"""The *hotspot* workload (Rodinia).

Table II: "2048 by 2048 grids of 600 iterations" — medium core
utilization, low memory utilization.  Hotspot is the paper's second
division case study (Fig. 7b, Fig. 8a): each thermal simulation step ends
at a common barrier, which is the tier-1 iteration boundary ("the step in
hotspot", §IV).

The functional kernel is the real Rodinia update rule: a 5-point stencil
that advances the chip temperature grid one timestep given a power
density map.  The partitioned variant splits the grid by rows; each side
needs one halo row from the other side's region — the data exchange that
makes hotspot's divided CUDA version pay the per-step synchronization tax
modelled by the demand profile's ``serial_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload

#: Rodinia hotspot physical constants (scaled for a unit grid cell).
CAP = 0.5
RX = 1.0
RY = 1.0
RZ = 4.0
AMB = 80.0


@dataclass(frozen=True)
class HotspotProblem:
    """A hotspot instance: temperature grid and power-density map."""

    temp: np.ndarray   # (rows, cols)
    power: np.ndarray  # (rows, cols)

    def __post_init__(self) -> None:
        if self.temp.ndim != 2 or self.temp.shape != self.power.shape:
            raise WorkloadError("temp and power must be equal-shape 2-D grids")
        if min(self.temp.shape) < 3:
            raise WorkloadError("grid must be at least 3x3")


def generate_problem(rows: int = 128, cols: int = 128, seed: int = 0) -> HotspotProblem:
    """Synthetic chip floorplan with a few hot functional blocks."""
    rng = np.random.default_rng(seed)
    temp = np.full((rows, cols), AMB + 20.0)
    power = rng.uniform(0.0, 0.5, size=(rows, cols))
    for _ in range(4):  # hot blocks (e.g. ALUs)
        r0 = rng.integers(0, max(1, rows - rows // 4))
        c0 = rng.integers(0, max(1, cols - cols // 4))
        power[r0 : r0 + rows // 4, c0 : c0 + cols // 4] += 2.0
    return HotspotProblem(temp=temp, power=power)


def _padded(temp: np.ndarray) -> np.ndarray:
    """Grid with replicated (adiabatic) boundary padding."""
    return np.pad(temp, 1, mode="edge")


def step(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """One monolithic hotspot timestep (Rodinia's single_iteration)."""
    p = _padded(temp)
    center = p[1:-1, 1:-1]
    north = p[:-2, 1:-1]
    south = p[2:, 1:-1]
    west = p[1:-1, :-2]
    east = p[1:-1, 2:]
    delta = (CAP) * (
        power
        + (north + south - 2.0 * center) / RY
        + (east + west - 2.0 * center) / RX
        + (AMB - center) / RZ
    )
    return center + delta


def step_partitioned(temp: np.ndarray, power: np.ndarray, r: float) -> np.ndarray:
    """One divided hotspot timestep with CPU share ``r`` (by rows).

    Each side computes its row band using a one-row halo from the
    neighbouring band (taken from the *previous* step's grid, like the
    real implementation's pre-step exchange), so the merged result equals
    the monolithic step exactly.
    """
    rows = temp.shape[0]
    cpu_sl, gpu_sl = partition_slices(rows, r)
    out = np.empty_like(temp)
    for sl in (cpu_sl, gpu_sl):
        if sl.stop - sl.start == 0:
            continue
        lo = max(sl.start - 1, 0)
        hi = min(sl.stop + 1, rows)
        band = step(temp[lo:hi], power[lo:hi])
        # Drop the halo rows that belong to the other side.
        out[sl] = band[sl.start - lo : band.shape[0] - (hi - sl.stop)]
    return out


def run(
    problem: HotspotProblem, steps: int, r: float = 0.0
) -> np.ndarray:
    """Advance the grid ``steps`` timesteps, optionally divided."""
    if steps < 1:
        raise WorkloadError("need at least one step")
    temp = problem.temp
    for _ in range(steps):
        if r > 0.0:
            temp = step_partitioned(temp, problem.power, r)
        else:
            temp = step(temp, problem.power)
    return temp


def peak_temperature(temp: np.ndarray) -> float:
    """Hottest cell — the quantity thermal management cares about."""
    return float(temp.max())


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing hotspot workload (Table II demand model)."""
    return make_workload("hotspot", **overrides)
