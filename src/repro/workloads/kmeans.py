"""The *kmeans* workload (Rodinia).

Table II: "988040 data points" — medium core utilization, low memory
utilization.  The paper uses kmeans as its primary division case study
(Fig. 2, Fig. 7a, Fig. 8b): one Lloyd iteration (assignment + centroid
update up to the reduction point) is one tier-1 iteration.

This module provides the *functional* kernel: an actual Lloyd's-algorithm
step over numpy arrays, in both monolithic and CPU/GPU-partitioned forms.
The partitioned form splits the points at the division boundary, computes
per-slice assignments and partial sums independently (what each side's
kernel would do), and merges the partials at the reduction point — the
merged result is bit-identical to the monolithic step, which is the
correctness contract of GreenGPU's workload division.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload


@dataclass(frozen=True)
class KMeansProblem:
    """A k-means instance: points and the current centroids."""

    points: np.ndarray     # (n, d)
    centroids: np.ndarray  # (k, d)

    def __post_init__(self) -> None:
        if self.points.ndim != 2 or self.centroids.ndim != 2:
            raise WorkloadError("points and centroids must be 2-D")
        if self.points.shape[1] != self.centroids.shape[1]:
            raise WorkloadError("dimension mismatch between points and centroids")
        if len(self.centroids) == 0:
            raise WorkloadError("need at least one centroid")

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def generate_problem(
    n: int = 4096, k: int = 8, d: int = 16, seed: int = 0
) -> KMeansProblem:
    """Synthetic clustered data (stand-in for Rodinia's kdd_cup input)."""
    rng = np.random.default_rng(seed)
    true_centers = rng.normal(0.0, 5.0, size=(k, d))
    assignments = rng.integers(0, k, size=n)
    points = true_centers[assignments] + rng.normal(0.0, 1.0, size=(n, d))
    init = points[rng.choice(n, size=k, replace=False)]
    return KMeansProblem(points=points, centroids=init)


def assign_labels(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (the GPU kernel's job)."""
    # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2; the ||p||^2 term is constant
    # per point and cannot change the argmin, so it is dropped.
    cross = points @ centroids.T
    c_norms = np.einsum("kd,kd->k", centroids, centroids)
    return np.argmin(c_norms[None, :] - 2.0 * cross, axis=1)


def partial_sums(
    points: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster coordinate sums and counts for one slice of points."""
    d = points.shape[1]
    sums = np.zeros((k, d))
    np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(float)
    return sums, counts


def lloyd_step(problem: KMeansProblem) -> tuple[np.ndarray, np.ndarray]:
    """One monolithic Lloyd iteration: (labels, new_centroids).

    Empty clusters keep their previous centroid (Rodinia's behaviour).
    """
    labels = assign_labels(problem.points, problem.centroids)
    sums, counts = partial_sums(problem.points, labels, problem.k)
    new_centroids = problem.centroids.copy()
    nonempty = counts > 0
    new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
    return labels, new_centroids


def lloyd_step_partitioned(
    problem: KMeansProblem, r: float
) -> tuple[np.ndarray, np.ndarray]:
    """One divided Lloyd iteration with CPU share ``r``.

    The CPU slice and the GPU slice are assigned independently; the
    reduction point merges the partial sums — exactly the structure the
    paper's pthread/CUDA implementation uses ("the iteration in kmeans"
    ends at the reduction point, §IV).
    """
    cpu_sl, gpu_sl = partition_slices(problem.n, r)
    labels = np.empty(problem.n, dtype=np.intp)
    total_sums = np.zeros_like(problem.centroids)
    total_counts = np.zeros(problem.k)
    for sl in (cpu_sl, gpu_sl):
        pts = problem.points[sl]
        if pts.shape[0] == 0:
            continue
        labels[sl] = assign_labels(pts, problem.centroids)
        sums, counts = partial_sums(pts, labels[sl], problem.k)
        total_sums += sums
        total_counts += counts
    new_centroids = problem.centroids.copy()
    nonempty = total_counts > 0
    new_centroids[nonempty] = total_sums[nonempty] / total_counts[nonempty, None]
    return labels, new_centroids


def run_lloyd(
    problem: KMeansProblem, iterations: int, r: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Run several (optionally divided) Lloyd iterations."""
    if iterations < 1:
        raise WorkloadError("need at least one iteration")
    centroids = problem.centroids
    labels = np.empty(problem.n, dtype=np.intp)
    for _ in range(iterations):
        step_problem = KMeansProblem(problem.points, centroids)
        if r > 0.0:
            labels, centroids = lloyd_step_partitioned(step_problem, r)
        else:
            labels, centroids = lloyd_step(step_problem)
    return labels, centroids


def inertia(problem: KMeansProblem, labels: np.ndarray) -> float:
    """Sum of squared distances to assigned centroids (monotone under Lloyd)."""
    diffs = problem.points - problem.centroids[labels]
    return float(np.einsum("nd,nd->", diffs, diffs))


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing kmeans workload (Table II demand model)."""
    return make_workload("kmeans", **overrides)
