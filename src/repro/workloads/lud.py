"""The *lud* workload (Rodinia): blocked LU decomposition.

Table II: "10 iterations; 8192 by 8192 matrix" — medium core utilization,
low memory utilization.

The functional kernel is Rodinia's blocked right-looking LU without
pivoting: for each diagonal block step, factor the diagonal block, update
the block row and block column, then apply the trailing-submatrix update.
The trailing update is the divisible work — its block rows split between
the CPU and GPU — and one diagonal step is one tier-1 iteration.

Inputs are made diagonally dominant so pivot-free elimination is stable,
matching Rodinia's generated matrices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload


def generate_matrix(n: int = 128, seed: int = 0) -> np.ndarray:
    """Random diagonally dominant matrix (safe for pivot-free LU)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.diag_indices(n)] = np.abs(a).sum(axis=1) + 1.0
    return a


def _factor_diagonal(block: np.ndarray) -> None:
    """Unblocked in-place LU of a small diagonal block (no pivoting)."""
    n = block.shape[0]
    for k in range(n - 1):
        pivot = block[k, k]
        if pivot == 0.0:
            raise WorkloadError("zero pivot in LU (matrix not dominant?)")
        block[k + 1 :, k] /= pivot
        block[k + 1 :, k + 1 :] -= np.outer(block[k + 1 :, k], block[k, k + 1 :])


def lu_blocked(a: np.ndarray, block: int = 16, r: float = 0.0) -> np.ndarray:
    """In-place blocked LU: returns the packed LU factors of ``a``.

    ``r`` divides each step's trailing-submatrix update by block rows
    (CPU share ``r``); the result is identical for any ``r`` because the
    row updates are independent.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise WorkloadError("matrix must be square")
    if block < 1:
        raise WorkloadError("block size must be positive")
    lu = np.array(a, dtype=float, copy=True)
    n = lu.shape[0]
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        diag = lu[k0:k1, k0:k1]
        _factor_diagonal(diag)
        if k1 >= n:
            break
        # Panel solves: L11 * U12 = A12  and  L21 * U11 = A21.
        l11 = np.tril(diag, -1) + np.eye(k1 - k0)
        u11 = np.triu(diag)
        lu[k0:k1, k1:] = np.linalg.solve(l11, lu[k0:k1, k1:])
        lu[k1:, k0:k1] = np.linalg.solve(u11.T, lu[k1:, k0:k1].T).T
        # Trailing update A22 -= L21 @ U12, divided by block rows.
        trailing_rows = n - k1
        cpu_sl, gpu_sl = partition_slices(trailing_rows, r)
        for sl in (cpu_sl, gpu_sl):
            rows = slice(k1 + sl.start, k1 + sl.stop)
            if rows.stop - rows.start == 0:
                continue
            lu[rows, k1:] -= lu[rows, k0:k1] @ lu[k0:k1, k1:]
    return lu


def unpack(lu: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed factors into (L, U) with unit-diagonal L."""
    l = np.tril(lu, -1) + np.eye(lu.shape[0])
    u = np.triu(lu)
    return l, u


def reconstruction_error(a: np.ndarray, lu: np.ndarray) -> float:
    """Relative Frobenius error ||A - L U|| / ||A||."""
    l, u = unpack(lu)
    return float(np.linalg.norm(a - l @ u) / np.linalg.norm(a))


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing lud workload (Table II demand model)."""
    return make_workload("lud", **overrides)
