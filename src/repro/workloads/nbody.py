"""The *nbody* workload (CUDA SDK).

Table II: "50 of iterations"; §III-A categorizes nbody as *core-bounded*
(the all-pairs force kernel re-reads a small body set from cache while
doing O(n^2) arithmetic), which is why throttling the GPU *memory*
frequency saves energy with negligible performance loss (Fig. 1a/1b).

The functional kernel is a softened-gravity all-pairs step with
leapfrog-style integration, like the SDK demo.  The force computation
divides by target bodies: each side computes accelerations for its slice
against *all* bodies (the same all-to-all structure the SDK's tiled
kernel has), so any split reproduces the monolithic result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload

SOFTENING_SQ = 1.0e-3


@dataclass(frozen=True)
class NBodySystem:
    """Positions, velocities and masses of the bodies."""

    pos: np.ndarray   # (n, 3)
    vel: np.ndarray   # (n, 3)
    mass: np.ndarray  # (n,)

    def __post_init__(self) -> None:
        n = self.pos.shape[0]
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise WorkloadError("pos and vel must be (n, 3)")
        if self.mass.shape != (n,):
            raise WorkloadError("mass must be (n,)")
        if np.any(self.mass <= 0.0):
            raise WorkloadError("masses must be positive")


def generate_system(n: int = 256, seed: int = 0) -> NBodySystem:
    """A random Plummer-ish cluster."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(0.0, 1.0, size=(n, 3))
    vel = rng.normal(0.0, 0.1, size=(n, 3))
    mass = rng.uniform(0.5, 1.5, size=n)
    return NBodySystem(pos=pos, vel=vel, mass=mass)


def accelerations(
    pos: np.ndarray, mass: np.ndarray, targets: slice | None = None
) -> np.ndarray:
    """Softened gravitational acceleration on ``targets`` from all bodies."""
    tgt = pos if targets is None else pos[targets]
    diff = pos[None, :, :] - tgt[:, None, :]          # (t, n, 3)
    dist_sq = np.einsum("tnc,tnc->tn", diff, diff) + SOFTENING_SQ
    inv_d3 = dist_sq ** -1.5
    return np.einsum("tnc,tn,n->tc", diff, inv_d3, mass)


def step(system: NBodySystem, dt: float = 1.0e-3, r: float = 0.0) -> NBodySystem:
    """One integration step, optionally divided by CPU share ``r``.

    Division splits the *target* bodies; both sides read the full body
    set, so the merged accelerations equal the monolithic computation.
    """
    if dt <= 0.0:
        raise WorkloadError("dt must be positive")
    n = system.pos.shape[0]
    acc = np.empty_like(system.pos)
    cpu_sl, gpu_sl = partition_slices(n, r)
    for sl in (cpu_sl, gpu_sl):
        if sl.stop - sl.start == 0:
            continue
        acc[sl] = accelerations(system.pos, system.mass, sl)
    vel = system.vel + dt * acc
    pos = system.pos + dt * vel
    return NBodySystem(pos=pos, vel=vel, mass=system.mass)


def run(system: NBodySystem, steps: int, dt: float = 1.0e-3, r: float = 0.0) -> NBodySystem:
    """Advance ``steps`` integration steps."""
    if steps < 1:
        raise WorkloadError("need at least one step")
    for _ in range(steps):
        system = step(system, dt=dt, r=r)
    return system


def total_energy(system: NBodySystem) -> float:
    """Kinetic + softened potential energy (approximately conserved)."""
    kinetic = 0.5 * float(np.einsum("n,nc,nc->", system.mass, system.vel, system.vel))
    diff = system.pos[None, :, :] - system.pos[:, None, :]
    dist = np.sqrt(np.einsum("ijc,ijc->ij", diff, diff) + SOFTENING_SQ)
    pair = np.outer(system.mass, system.mass) / dist
    potential = -0.5 * float(pair.sum() - np.trace(pair))
    return kinetic + potential


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing nbody workload (Table II demand model)."""
    return make_workload("nbody", **overrides)
