"""The *PF* (pathfinder) workload (Rodinia).

Table II: "2048 by 2048 dimensions" — low core and memory utilization
(the per-row dynamic-programming kernel is short and latency-bound, which
is exactly the profile that benefits most from frequency throttling,
Fig. 6 discussion).

The functional kernel is Rodinia's pathfinder dynamic program: find the
minimum-cost bottom-to-top path through a weight grid where each step
moves up-left, up, or up-right.  Each DP row is a barrier step; columns
divide between CPU and GPU with a one-column halo on each side of the
split (the same ghost-column trick Rodinia's blocked kernel uses).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload


def generate_grid(rows: int = 256, cols: int = 256, seed: int = 0) -> np.ndarray:
    """Random integer cost grid like Rodinia's input generator."""
    rng = np.random.default_rng(seed)
    return rng.integers(1, 11, size=(rows, cols)).astype(np.int64)


def _relax_row(prev: np.ndarray, costs: np.ndarray) -> np.ndarray:
    """One DP row: best[j] = costs[j] + min(prev[j-1], prev[j], prev[j+1])."""
    padded = np.pad(prev, 1, mode="edge")
    best_neighbor = np.minimum(
        np.minimum(padded[:-2], padded[1:-1]), padded[2:]
    )
    return costs + best_neighbor


def _relax_row_partitioned(prev: np.ndarray, costs: np.ndarray, r: float) -> np.ndarray:
    """Divided DP row with a one-column halo at the split boundary."""
    cols = prev.shape[0]
    cpu_sl, gpu_sl = partition_slices(cols, r)
    out = np.empty_like(prev)
    for sl in (cpu_sl, gpu_sl):
        if sl.stop - sl.start == 0:
            continue
        lo = max(sl.start - 1, 0)
        hi = min(sl.stop + 1, cols)
        band = _relax_row(prev[lo:hi], costs[lo:hi])
        # The halo columns were computed with a truncated neighbourhood;
        # keep only this side's own columns.
        out[sl] = band[sl.start - lo : band.shape[0] - (hi - sl.stop)]
    return out


def min_path_costs(grid: np.ndarray, r: float = 0.0) -> np.ndarray:
    """Minimum path cost ending at each top-row cell.

    The DP sweeps from the bottom row upward, one barrier per row,
    optionally divided by columns with CPU share ``r``.
    """
    if grid.ndim != 2:
        raise WorkloadError("grid must be 2-D")
    rows = grid.shape[0]
    if rows < 1:
        raise WorkloadError("grid needs at least one row")
    dp = grid[-1].astype(np.int64).copy()
    for row in range(rows - 2, -1, -1):
        if r > 0.0:
            dp = _relax_row_partitioned(dp, grid[row], r)
        else:
            dp = _relax_row(dp, grid[row])
    return dp


def best_path_cost(grid: np.ndarray, r: float = 0.0) -> int:
    """Cost of the cheapest bottom-to-top path."""
    return int(min_path_costs(grid, r).min())


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing pathfinder workload (Table II demand model)."""
    return make_workload("pathfinder", **overrides)
