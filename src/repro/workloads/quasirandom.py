"""The *QG* (quasirandomGenerator) workload (CUDA SDK).

Table II: "600 iterations; 16777216 points" — utilizations highly
fluctuate.  The SDK program alternates two very different kernels: the
Niederreiter/Sobol-style table-driven sequence generation (compute-heavy,
bit manipulation in registers) and the inverse-CDF transform pass that
streams the whole output array (memory-heavy).  The demand profile's two
phases model exactly this alternation, which is what exercises the WMA
scaler's responsiveness to phase changes (Fig. 6 discussion).

The functional kernel generates a genuine quasirandom sequence: the
binary (base-2) Van der Corput / Sobol' direction-number construction,
followed by Moro's inverse-normal-CDF transform — the same two stages as
the SDK sample.  Points divide by index range between the CPU and GPU;
quasirandom sequences are index-addressable so any split reproduces the
monolithic output.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload

QRNG_BITS = 31


def direction_numbers(dim: int) -> np.ndarray:
    """Direction numbers for one Sobol'-style dimension.

    Dimension 0 is the plain binary Van der Corput sequence; higher
    dimensions XOR-shift the table with a dimension-dependent odd
    multiplier, mirroring the SDK's precomputed tables.
    """
    if dim < 0:
        raise WorkloadError("dimension must be non-negative")
    v = np.zeros(QRNG_BITS, dtype=np.uint64)
    for bit in range(QRNG_BITS):
        v[bit] = np.uint64(1) << np.uint64(QRNG_BITS - 1 - bit)
    if dim > 0:
        scramble = np.uint64(2 * dim + 1)
        for bit in range(1, QRNG_BITS):
            v[bit] = v[bit] ^ ((v[bit - 1] * scramble) & np.uint64((1 << QRNG_BITS) - 1))
    return v


def sequence(start: int, count: int, dim: int = 0) -> np.ndarray:
    """Quasirandom points ``start .. start+count-1`` in one dimension, in (0, 1)."""
    if start < 0 or count < 0:
        raise WorkloadError("start and count must be non-negative")
    if count == 0:
        return np.empty(0)
    v = direction_numbers(dim)
    idx = np.arange(start + 1, start + count + 1, dtype=np.uint64)  # skip 0
    acc = np.zeros(count, dtype=np.uint64)
    for bit in range(QRNG_BITS):
        mask = (idx >> np.uint64(bit)) & np.uint64(1)
        acc ^= mask * v[bit]
    return (acc.astype(np.float64) + 0.5) / float(1 << QRNG_BITS)


def moro_inverse_cdf(u: np.ndarray) -> np.ndarray:
    """Moro's inverse normal CDF approximation (the SDK's second kernel)."""
    u = np.asarray(u, dtype=float)
    if np.any((u <= 0.0) | (u >= 1.0)):
        raise WorkloadError("inputs must be strictly inside (0, 1)")
    a = (2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637)
    b = (-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833)
    c = (
        0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
        0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
        0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
    )
    y = u - 0.5
    out = np.empty_like(y)
    central = np.abs(y) < 0.42
    yc = y[central]
    z = yc * yc
    num = yc * (a[0] + z * (a[1] + z * (a[2] + z * a[3])))
    den = 1.0 + z * (b[0] + z * (b[1] + z * (b[2] + z * b[3])))
    out[central] = num / den
    yt = y[~central]
    x = np.where(yt > 0.0, 1.0 - u[~central], u[~central])
    k = np.log(-np.log(x))
    poly = np.zeros_like(k)
    for coef in reversed(c):
        poly = poly * k + coef
    out[~central] = np.sign(yt) * poly
    return out


def generate(
    count: int, dim: int = 0, r: float = 0.0, transform: bool = True
) -> np.ndarray:
    """Generate ``count`` (optionally normal-transformed) quasirandom points.

    Division splits the index range: the CPU takes indices
    ``[0, r*count)``, the GPU the rest — identical output for any ``r``.
    """
    cpu_sl, gpu_sl = partition_slices(count, r)
    parts = []
    for sl in (cpu_sl, gpu_sl):
        n = sl.stop - sl.start
        if n == 0:
            continue
        u = sequence(sl.start, n, dim)
        parts.append(moro_inverse_cdf(u) if transform else u)
    if not parts:
        return np.empty(0)
    return np.concatenate(parts)


def star_discrepancy_proxy(points: np.ndarray, bins: int = 64) -> float:
    """Cheap uniformity figure: max |empirical - uniform| CDF gap on a grid.

    True star discrepancy is exponential to compute; the binned proxy is
    enough to assert quasirandomness beats pseudorandomness in tests.
    """
    if points.size == 0:
        raise WorkloadError("need at least one point")
    grid = np.linspace(0.0, 1.0, bins + 1)[1:]
    empirical = np.searchsorted(np.sort(points), grid, side="right") / points.size
    return float(np.abs(empirical - grid).max())


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing QG workload (Table II demand model)."""
    return make_workload("quasirandom", **overrides)
