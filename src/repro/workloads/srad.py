"""The *srad_v2* workload (Rodinia): speckle-reducing anisotropic diffusion.

Table II: "2048 columns by 2048 rows" — high core utilization, medium
memory utilization (two stencil passes with a division-heavy coefficient
computation).

The functional kernel is the real SRAD update used on ultrasound imagery:
per step, (1) compute the instantaneous coefficient of variation from the
image statistics, (2) derive the per-pixel diffusion coefficient, and
(3) apply the divergence update.  Steps are barrier-separated tier-1
iterations; rows divide between CPU and GPU with one-row halos, and the
global image statistics reduce across both sides first — the same
two-phase structure as Rodinia's srad_v2 kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload


def generate_image(rows: int = 128, cols: int = 128, seed: int = 0) -> np.ndarray:
    """Synthetic speckled image: smooth regions + multiplicative noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.meshgrid(np.linspace(0, 1, rows), np.linspace(0, 1, cols), indexing="ij")
    clean = 100.0 + 50.0 * np.sin(3.0 * np.pi * yy) * np.cos(2.0 * np.pi * xx)
    speckle = rng.gamma(shape=10.0, scale=0.1, size=(rows, cols))
    return np.abs(clean) * speckle + 1.0


def _neighbors(img: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(N, S, W, E) differences with replicated boundaries."""
    p = np.pad(img, 1, mode="edge")
    c = p[1:-1, 1:-1]
    return p[:-2, 1:-1] - c, p[2:, 1:-1] - c, p[1:-1, :-2] - c, p[1:-1, 2:] - c


def diffusion_coefficient(img: np.ndarray, q0_sq: float) -> np.ndarray:
    """Per-pixel SRAD conduction coefficient, clipped to [0, 1]."""
    dn, ds, dw, de = _neighbors(img)
    g2 = (dn**2 + ds**2 + dw**2 + de**2) / (img**2)
    laplacian = (dn + ds + dw + de) / img
    num = 0.5 * g2 - (1.0 / 16.0) * laplacian**2
    den = (1.0 + 0.25 * laplacian) ** 2
    q_sq = num / np.maximum(den, 1e-12)
    coeff = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq) + 1e-12))
    return np.clip(coeff, 0.0, 1.0)


def srad_step(img: np.ndarray, dt: float = 0.05) -> np.ndarray:
    """One monolithic SRAD step over the whole image."""
    mean = img.mean()
    var = img.var()
    q0_sq = var / (mean * mean + 1e-12)
    coeff = diffusion_coefficient(img, q0_sq)
    cp = np.pad(coeff, 1, mode="edge")
    dn, ds, dw, de = _neighbors(img)
    # Rodinia's divergence uses the south/east coefficients of the
    # neighbour for the north/west fluxes.
    div = cp[2:, 1:-1] * ds + coeff * dn + cp[1:-1, 2:] * de + coeff * dw
    return img + (dt / 4.0) * div


def srad_step_partitioned(img: np.ndarray, r: float, dt: float = 0.05) -> np.ndarray:
    """One divided SRAD step with CPU share ``r`` (by rows).

    The image statistics (q0) reduce over *both* sides' partial sums
    first, then each side computes its row band with two-row halos (the
    divergence needs the neighbour's coefficient, which itself needs one
    more ring of image data).
    """
    rows = img.shape[0]
    cpu_sl, gpu_sl = partition_slices(rows, r)
    # Phase 1: global statistics from per-side partial reductions.
    parts = [img[sl] for sl in (cpu_sl, gpu_sl) if sl.stop > sl.start]
    count = sum(p.size for p in parts)
    total = sum(float(p.sum()) for p in parts)
    total_sq = sum(float((p * p).sum()) for p in parts)
    mean = total / count
    var = total_sq / count - mean * mean
    q0_sq = var / (mean * mean + 1e-12)
    # Phase 2: banded update with 2-row halos.
    out = np.empty_like(img)
    for sl in (cpu_sl, gpu_sl):
        if sl.stop - sl.start == 0:
            continue
        lo = max(sl.start - 2, 0)
        hi = min(sl.stop + 2, rows)
        band = img[lo:hi]
        coeff = diffusion_coefficient(band, q0_sq)
        cp = np.pad(coeff, 1, mode="edge")
        dn, ds, dw, de = _neighbors(band)
        div = cp[2:, 1:-1] * ds + coeff * dn + cp[1:-1, 2:] * de + coeff * dw
        updated = band + (dt / 4.0) * div
        out[sl] = updated[sl.start - lo : updated.shape[0] - (hi - sl.stop)]
    return out


def run(img: np.ndarray, steps: int, r: float = 0.0, dt: float = 0.05) -> np.ndarray:
    """Run ``steps`` SRAD iterations, optionally divided."""
    if steps < 1:
        raise WorkloadError("need at least one step")
    for _ in range(steps):
        img = srad_step_partitioned(img, r, dt) if r > 0.0 else srad_step(img, dt)
    return img


def speckle_index(img: np.ndarray) -> float:
    """Variance-to-mean-squared ratio: decreases as SRAD denoises."""
    m = float(img.mean())
    return float(img.var()) / (m * m)


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing srad_v2 workload (Table II demand model)."""
    return make_workload("srad_v2", **overrides)
