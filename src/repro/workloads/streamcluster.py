"""The *streamcluster* (SC) workload (Rodinia / PARSEC).

Table II: "65536 points with 512 dimensions" — utilizations highly
fluctuate; §III-A categorizes SC as *memory-bounded* (the dominant
``pgain`` kernel streams the full point set per candidate, so the memory
frequency matters most — Fig. 1b/5b).

The functional kernel implements the heart of streamcluster: online
facility-location clustering.  ``pgain(x)`` evaluates whether opening a
candidate centre ``x`` lowers total cost (assignment cost + facility
cost); the main loop opens the candidate when the gain is positive.  The
gain computation divides by points: each side accumulates its slice's
savings and the partials reduce before the open/close decision — the
exact parallel structure of Rodinia's version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.partition import partition_slices
from repro.workloads.base import DemandModelWorkload
from repro.workloads.characteristics import make_workload


@dataclass
class ClusterState:
    """Current facility assignment of the streamed points."""

    points: np.ndarray            # (n, d)
    weights: np.ndarray           # (n,) point multiplicities
    centers: list[int]            # indices of open facilities
    assignment: np.ndarray        # (n,) index into ``points`` of each point's centre
    costs: np.ndarray = field(init=False)  # (n,) weighted distance to centre

    def __post_init__(self) -> None:
        if self.points.ndim != 2:
            raise WorkloadError("points must be 2-D")
        if not self.centers:
            raise WorkloadError("need at least one open centre")
        self.refresh_costs()

    def refresh_costs(self) -> None:
        diffs = self.points - self.points[self.assignment]
        self.costs = self.weights * np.einsum("nd,nd->n", diffs, diffs)

    def total_cost(self, facility_cost: float) -> float:
        return float(self.costs.sum()) + facility_cost * len(self.centers)


def generate_stream(n: int = 512, d: int = 8, k: int = 6, seed: int = 0) -> ClusterState:
    """Synthetic point stream with ``k`` latent clusters, 1 open centre."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 4.0, size=(k, d))
    labels = rng.integers(0, k, size=n)
    points = centers[labels] + rng.normal(0.0, 0.5, size=(n, d))
    weights = np.ones(n)
    return ClusterState(
        points=points,
        weights=weights,
        centers=[0],
        assignment=np.zeros(n, dtype=np.intp),
    )


def pgain(
    state: ClusterState, candidate: int, facility_cost: float, r: float = 0.0
) -> tuple[float, np.ndarray]:
    """Gain from opening ``candidate``, and the points that would switch.

    Divided by points with CPU share ``r``: each side computes its
    slice's per-point savings; the reduction sums both (identical to the
    monolithic result by construction).
    """
    if not 0 <= candidate < state.points.shape[0]:
        raise WorkloadError("candidate index out of range")
    n = state.points.shape[0]
    switch = np.zeros(n, dtype=bool)
    savings = 0.0
    cand = state.points[candidate]
    cpu_sl, gpu_sl = partition_slices(n, r)
    for sl in (cpu_sl, gpu_sl):
        if sl.stop - sl.start == 0:
            continue
        diffs = state.points[sl] - cand
        cand_cost = state.weights[sl] * np.einsum("nd,nd->n", diffs, diffs)
        delta = state.costs[sl] - cand_cost
        gainers = delta > 0.0
        switch[sl] = gainers
        savings += float(delta[gainers].sum())
    return savings - facility_cost, switch


def open_if_gainful(
    state: ClusterState, candidate: int, facility_cost: float, r: float = 0.0
) -> bool:
    """Run one pgain step and open the candidate when profitable."""
    gain, switch = pgain(state, candidate, facility_cost, r)
    if gain <= 0.0:
        return False
    state.centers.append(candidate)
    state.assignment[switch] = candidate
    state.refresh_costs()
    return True


def cluster_stream(
    state: ClusterState,
    facility_cost: float,
    candidates: np.ndarray | None = None,
    r: float = 0.0,
) -> ClusterState:
    """Facility-location pass over candidate centres (one per iteration).

    ``candidates`` defaults to every point in stream order, mirroring the
    online algorithm.  Returns the mutated state.
    """
    if candidates is None:
        candidates = np.arange(state.points.shape[0])
    for cand in candidates:
        open_if_gainful(state, int(cand), facility_cost, r)
    return state


def workload(**overrides: object) -> DemandModelWorkload:
    """The simulator-facing streamcluster workload (Table II demand model)."""
    return make_workload("streamcluster", **overrides)
