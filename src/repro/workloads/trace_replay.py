"""Build workloads from recorded utilization traces.

The paper characterizes workloads "by studying the utilization traces"
collected with ``nvidia-smi`` (§VI).  This module closes that loop for
users of the library: feed in a real (or synthetic) utilization log —
rows of ``time_s, u_core, u_mem`` such as a polled ``nvidia-smi`` dump —
and get back a :class:`WorkloadProfile` whose phases replay it on the
simulated testbed.  That makes the whole GreenGPU stack (division,
scaling, oracles, ablations) applicable to traces captured from machines
that no longer exist.

Infeasible samples (utilization pairs outside the roofline's reachable
region, e.g. from measurement noise) are projected radially onto the
feasible set; heavy traces are compressed by merging consecutive samples
whose utilizations differ less than a tolerance.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.gpu import GpuSpec
from repro.sim.perf import RooflineModel
from repro.workloads.base import Phase, WorkloadProfile


@dataclass(frozen=True, slots=True)
class TraceSample:
    """One utilization observation."""

    t: float
    u_core: float
    u_mem: float

    def __post_init__(self) -> None:
        if self.t < 0.0:
            raise WorkloadError("sample time must be non-negative")
        for u in (self.u_core, self.u_mem):
            if not 0.0 <= u <= 1.0:
                raise WorkloadError(f"utilization {u} out of [0, 1]")


def parse_csv(text: str) -> list[TraceSample]:
    """Parse ``time_s,u_core,u_mem`` rows (header and % values allowed).

    Accepts the common ``nvidia-smi --query-gpu`` CSV shape: numbers may
    carry a ``%`` suffix and utilizations may be given in 0-100.
    """
    samples: list[TraceSample] = []
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip().rstrip("%").strip() for p in line.split(",")]
        if len(parts) != 3:
            raise WorkloadError(f"line {lineno}: expected 3 columns, got {len(parts)}")
        try:
            t, u_core, u_mem = (float(p) for p in parts)
        except ValueError:
            if lineno == 1:
                continue  # header row
            raise WorkloadError(f"line {lineno}: non-numeric field") from None
        if u_core > 1.0 or u_mem > 1.0:   # percentage convention
            u_core, u_mem = u_core / 100.0, u_mem / 100.0
        samples.append(TraceSample(t=t, u_core=u_core, u_mem=u_mem))
    if len(samples) < 2:
        raise WorkloadError("a trace needs at least two samples")
    times = [s.t for s in samples]
    if any(b <= a for a, b in zip(times, times[1:])):
        raise WorkloadError("sample times must be strictly increasing")
    return samples


def project_feasible(
    u_core: float, u_mem: float, roofline: RooflineModel, margin: float = 0.01
) -> tuple[float, float]:
    """Radially shrink an infeasible utilization pair onto the boundary."""
    limit = 1.0 - margin
    norm = roofline.utilization_norm(u_core, u_mem)
    if norm <= limit:
        return u_core, u_mem
    scale = limit / norm
    return u_core * scale, u_mem * scale


def compress(
    samples: list[TraceSample], tolerance: float = 0.05
) -> list[tuple[float, float, float]]:
    """Merge consecutive samples into (duration, u_core, u_mem) segments.

    A new segment starts whenever either utilization moves more than
    ``tolerance`` from the running segment mean.  The final sample's
    timestamp closes the last segment, matching how a polled log bounds
    its own duration.
    """
    if tolerance < 0.0:
        raise WorkloadError("tolerance must be non-negative")
    segments: list[tuple[float, float, float]] = []
    start = samples[0].t
    acc: list[TraceSample] = [samples[0]]

    def flush(end: float) -> None:
        duration = end - start
        if duration <= 0.0:
            return
        u_core = float(np.mean([s.u_core for s in acc]))
        u_mem = float(np.mean([s.u_mem for s in acc]))
        segments.append((duration, u_core, u_mem))

    for sample in samples[1:]:
        mean_core = float(np.mean([s.u_core for s in acc]))
        mean_mem = float(np.mean([s.u_mem for s in acc]))
        if (
            abs(sample.u_core - mean_core) > tolerance
            or abs(sample.u_mem - mean_mem) > tolerance
        ):
            flush(sample.t)
            start = sample.t
            acc = [sample]
        else:
            acc.append(sample)
    flush(samples[-1].t + (samples[-1].t - samples[-2].t))
    if not segments:
        raise WorkloadError("trace compressed to nothing (zero duration?)")
    return segments


def profile_from_trace(
    samples: list[TraceSample],
    gpu: GpuSpec,
    name: str = "trace-replay",
    cpu_gpu_time_ratio: float = 4.0,
    tolerance: float = 0.05,
    h2d_bytes_per_iteration: float = 8.0e6,
    d2h_bytes_per_iteration: float = 1.0e6,
) -> WorkloadProfile:
    """Turn a utilization trace into a replayable workload profile.

    The whole trace becomes one iteration whose phases follow the
    compressed segments; infeasible pairs are projected onto the
    roofline's reachable set.
    """
    segments = compress(samples, tolerance=tolerance)
    total = sum(d for d, _, _ in segments)
    phases = []
    for duration, u_core, u_mem in segments:
        u_core, u_mem = project_feasible(u_core, u_mem, gpu.roofline)
        phases.append(Phase(duration / total, u_core, u_mem))
    fluctuating = len(phases) > 1
    return WorkloadProfile(
        name=name,
        description="replayed utilization trace",
        enlargement=f"{len(samples)} samples, {len(phases)} phases",
        phases=tuple(phases),
        gpu_seconds_per_iteration=total,
        cpu_gpu_time_ratio=cpu_gpu_time_ratio,
        h2d_bytes_per_iteration=h2d_bytes_per_iteration,
        d2h_bytes_per_iteration=d2h_bytes_per_iteration,
        serial_fraction=0.0,
        fluctuating=fluctuating,
    )
