"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import bar_chart, line_chart, sparkline
from repro.errors import ConfigError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(np.linspace(0, 1, 8))
        assert list(line) == sorted(line)

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"

    def test_constant_series_flat(self):
        line = sparkline([5.0] * 6)
        assert len(set(line)) == 1

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            sparkline([])

    def test_rejects_nan(self):
        with pytest.raises(ConfigError):
            sparkline([1.0, float("nan")])


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart([0, 1, 2], [1.0, 2.0, 3.0], width=20, height=5)
        body = [l for l in chart.splitlines() if "|" in l]
        assert len(body) == 5

    def test_title_included(self):
        chart = line_chart([0, 1], [1.0, 2.0], title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_y_labels_span_range(self):
        chart = line_chart([0, 1], [10.0, 20.0])
        assert "20.0" in chart and "10.0" in chart

    def test_rising_series_marks_rise(self):
        chart = line_chart([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0], width=16, height=4)
        rows = [l.split("|", 1)[1] for l in chart.splitlines() if "|" in l]
        # The top row's mark must be to the right of the bottom row's.
        top = rows[0].index("*")
        bottom = rows[-1].index("*")
        assert top > bottom

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigError):
            line_chart([0, 1], [1.0])

    def test_too_small_raises(self):
        with pytest.raises(ConfigError):
            line_chart([0, 1], [1.0, 2.0], width=4)

    def test_constant_series_renders(self):
        chart = line_chart([0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in chart


class TestBarChart:
    def test_bar_lengths_proportional(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_negative_bars_left_of_axis(self):
        chart = bar_chart(["neg", "pos"], [-1.0, 1.0], width=10)
        neg_line, pos_line = chart.splitlines()
        assert neg_line.rstrip().endswith("|")
        assert "|#" in pos_line

    def test_values_printed(self):
        chart = bar_chart(["x"], [3.14])
        assert "3.14" in chart

    def test_title(self):
        chart = bar_chart(["x"], [1.0], title="Savings")
        assert chart.splitlines()[0] == "Savings"

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_values_render(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in chart
