"""Tests for convergence detection."""

import pytest

from repro.analysis.convergence import (
    converged_value,
    convergence_iteration,
    oscillation_amplitude,
)
from repro.errors import ConvergenceError


class TestConvergenceIteration:
    def test_settled_series(self):
        assert convergence_iteration([0.3, 0.25, 0.2, 0.2, 0.2]) == 2

    def test_constant_series(self):
        assert convergence_iteration([0.5, 0.5, 0.5]) == 0

    def test_single_element(self):
        assert convergence_iteration([1.0]) == 0

    def test_tolerance(self):
        series = [0.3, 0.2, 0.201, 0.199]
        assert convergence_iteration(series, tol=0.01) == 1

    def test_still_moving_raises(self):
        with pytest.raises(ConvergenceError):
            convergence_iteration([0.1, 0.2, 0.3])

    def test_empty_raises(self):
        with pytest.raises(ConvergenceError):
            convergence_iteration([])


class TestConvergedValue:
    def test_returns_settled_value(self):
        assert converged_value([0.3, 0.25, 0.2, 0.2]) == 0.2


class TestOscillationAmplitude:
    def test_settled_zero(self):
        assert oscillation_amplitude([0.2] * 10) == 0.0

    def test_bouncing_pair(self):
        series = [0.1, 0.2] * 5
        assert oscillation_amplitude(series) == pytest.approx(0.1)

    def test_tail_window(self):
        series = [0.9, 0.1] + [0.5] * 6
        assert oscillation_amplitude(series, tail=6) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ConvergenceError):
            oscillation_amplitude([])
