"""Tests for the energy accounting metrics."""

import pytest

from repro.analysis.energy import (
    cpu_gpu_emulated_saving,
    dynamic_gpu_energy,
    dynamic_gpu_saving,
    gpu_idle_wall_power,
    total_gpu_saving,
)
from repro.errors import SimulationError
from repro.runtime.metrics import RunResult


def _run(gpu_j=1000.0, total_s=10.0, cpu_j=500.0, emulated_cpu_j=400.0):
    return RunResult(
        workload="w", policy="p",
        total_s=total_s, total_energy_j=gpu_j + cpu_j,
        gpu_energy_j=gpu_j, cpu_energy_j=cpu_j,
        cpu_energy_emulated_idle_spin_j=emulated_cpu_j,
    )


class TestIdleWallPower:
    def test_uses_floor_clocks_and_meter2_boundary(self, testbed_config):
        p = gpu_idle_wall_power(testbed_config)
        gpu = testbed_config.gpu
        device = gpu.power.idle_power(
            gpu.core_ladder.floor / gpu.core_ladder.peak,
            gpu.mem_ladder.floor / gpu.mem_ladder.peak,
        )
        expected = (device + testbed_config.meter2_overhead_w) / testbed_config.meter2_efficiency
        assert p == pytest.approx(expected)


class TestDynamicEnergy:
    def test_subtracts_idle_energy(self, testbed_config):
        run = _run(gpu_j=2000.0, total_s=10.0)
        idle = gpu_idle_wall_power(testbed_config) * 10.0
        assert dynamic_gpu_energy(run, testbed_config) == pytest.approx(2000.0 - idle)

    def test_clamped_at_zero(self, testbed_config):
        run = _run(gpu_j=1.0, total_s=100.0)
        assert dynamic_gpu_energy(run, testbed_config) == 0.0

    def test_requires_elapsed_time(self, testbed_config):
        with pytest.raises(SimulationError):
            dynamic_gpu_energy(_run(total_s=0.0), testbed_config)


class TestSavings:
    def test_total_gpu_saving(self):
        assert total_gpu_saving(_run(gpu_j=900.0), _run(gpu_j=1000.0)) == pytest.approx(0.1)

    def test_dynamic_saving_amplifies_total_saving(self, testbed_config):
        """The paper's Fig. 6a-vs-6b asymmetry: with a large idle floor,
        the same absolute saving is a much bigger dynamic fraction."""
        base = _run(gpu_j=1600.0, total_s=10.0)
        scaled = _run(gpu_j=1500.0, total_s=10.0)
        total = total_gpu_saving(scaled, base)
        dynamic = dynamic_gpu_saving(scaled, base, testbed_config)
        assert dynamic > 2.0 * total

    def test_dynamic_saving_requires_dynamic_baseline(self, testbed_config):
        tiny = _run(gpu_j=1.0, total_s=100.0)
        with pytest.raises(SimulationError):
            dynamic_gpu_saving(_run(), tiny, testbed_config)

    def test_emulated_cpu_gpu_saving(self):
        base = _run(gpu_j=1000.0, cpu_j=500.0)
        scaled = _run(gpu_j=950.0, cpu_j=500.0, emulated_cpu_j=350.0)
        saving = cpu_gpu_emulated_saving(scaled, base)
        assert saving == pytest.approx(1.0 - (950.0 + 350.0) / 1500.0)

    def test_emulated_saving_exceeds_gpu_only(self):
        base = _run()
        scaled = _run(gpu_j=950.0, emulated_cpu_j=300.0)
        gpu_only_system = 1.0 - (950.0 + 500.0) / 1500.0
        assert cpu_gpu_emulated_saving(scaled, base) > gpu_only_system
