"""Tests for the utilization fluctuation detector."""

import numpy as np
import pytest

from repro.analysis.fluctuation import (
    DEFAULT_THRESHOLD,
    detect_fluctuation,
    volatility,
)
from repro.errors import ConfigError


class TestVolatility:
    def test_constant_series_zero(self):
        assert volatility([0.5] * 10) == 0.0

    def test_bimodal_series_scores_deviation(self):
        series = [0.2] * 5 + [0.8] * 5
        assert volatility(series) == pytest.approx(0.3)

    def test_dwell_time_invariance(self):
        """Slow and fast alternation between the same two operating
        points must score identically (the detector's design point)."""
        fast = [0.2, 0.8] * 10
        slow = [0.2] * 10 + [0.8] * 10
        assert volatility(fast) == pytest.approx(volatility(slow))

    def test_small_noise_scores_low(self):
        rng = np.random.default_rng(0)
        series = 0.5 + rng.normal(0.0, 0.01, size=100)
        assert volatility(np.clip(series, 0, 1)) < 0.02

    def test_needs_two_samples(self):
        with pytest.raises(ConfigError):
            volatility([0.5])

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            volatility([0.5, 1.5])


class TestDetector:
    def test_stable_trace_not_flagged(self):
        report = detect_fluctuation([0.6] * 20, [0.25] * 20)
        assert not report.fluctuating
        assert report.volatility == 0.0

    def test_fluctuating_core_flagged(self):
        report = detect_fluctuation([0.85, 0.25] * 10, [0.4] * 20)
        assert report.fluctuating
        assert report.core_volatility > report.mem_volatility

    def test_fluctuating_memory_flagged(self):
        report = detect_fluctuation([0.5] * 20, [0.74, 0.50] * 10)
        assert report.fluctuating

    def test_threshold_boundary(self):
        series = [0.5 - DEFAULT_THRESHOLD / 2, 0.5 + DEFAULT_THRESHOLD / 2] * 10
        report = detect_fluctuation(series, [0.3] * 20)
        assert report.volatility == pytest.approx(DEFAULT_THRESHOLD / 2)
        assert not report.fluctuating

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            detect_fluctuation([0.5, 0.5], [0.5, 0.5], threshold=0.0)


class TestEndToEndClassification:
    def test_paper_classification_reproduced(self):
        """The measured classification must match the paper's Table II:
        exactly QG and streamcluster fluctuate."""
        from repro.experiments import table2

        rows = table2.run(n_iterations=1, time_scale=0.15)
        flagged = {r.name for r in rows if r.fluctuating}
        assert flagged == {"quasirandom", "streamcluster"}
