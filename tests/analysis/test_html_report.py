"""The self-contained HTML run report: structure, completeness, and the
zero-external-dependency contract."""

import pytest

from repro.analysis.html_report import (
    REPORT_NAME,
    render_html_report,
    write_html_report,
)
from repro.core.policies import GreenGpuPolicy
from repro.errors import SerializationError
from repro.experiments.common import (
    scaled_config,
    scaled_options,
    scaled_workload,
)
from repro.runtime.executor import run_workload
from repro.telemetry import AuditTrail, Telemetry, export_telemetry

TIME_SCALE = 0.05


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("report-run")
    telemetry = Telemetry()
    trail = AuditTrail()
    run_workload(
        scaled_workload("kmeans", TIME_SCALE),
        GreenGpuPolicy(config=scaled_config(TIME_SCALE)),
        n_iterations=2, options=scaled_options(TIME_SCALE),
        telemetry=telemetry, audit=trail,
    )
    export_telemetry(telemetry, directory)
    trail.write(directory)
    return directory


@pytest.fixture(scope="module")
def html(run_dir):
    return render_html_report(run_dir)


class TestSelfContainment:
    def test_no_network_references(self, html):
        for forbidden in ("http://", "https://", "src=", "@import",
                          "url(", "<script", "<link", "<iframe"):
            assert forbidden not in html, forbidden

    def test_single_document_with_inline_style(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<style>") == 1
        assert "color-scheme: light" in html


class TestContent:
    def test_all_four_timelines_present(self, html):
        assert "GPU frequency (WMA tier 2)" in html
        assert "GPU utilization" in html
        assert "System wall power" in html
        assert "Division ratio (tier 1, CPU share)" in html

    def test_weight_heatmap_present(self, html):
        assert "WMA weight evolution" in html
        assert "chosen pair" in html

    def test_timelines_are_inline_svg(self, html):
        assert html.count("<svg") >= 5
        assert html.count("<svg") == html.count("</svg>")

    def test_legend_for_multi_series_charts(self, html):
        # Identity is never color-alone: core/mem and u_core/u_mem
        # carry legends.
        assert html.count('class="legend"') >= 3
        assert ">core<" in html and ">memory<" in html

    def test_data_table_fold_exists(self, html):
        assert "<details>" in html
        assert "<table>" in html

    def test_header_stats(self, html):
        assert "kJ" in html
        assert "decision flips" in html
        assert "kmeans" in html and "greengpu" in html

    def test_flip_markers_have_tooltips(self, html):
        assert "decision flip at t=" in html

    def test_no_nan_leaks_into_markup(self, html):
        assert "NaN" not in html and "Infinity" not in html


class TestWriteHtmlReport:
    def test_default_output_path(self, run_dir):
        out = write_html_report(run_dir)
        assert out.endswith(REPORT_NAME)
        with open(out, encoding="utf-8") as handle:
            assert handle.read().startswith("<!DOCTYPE html>")

    def test_explicit_output_path(self, run_dir, tmp_path):
        out = write_html_report(run_dir, tmp_path / "custom.html")
        assert (tmp_path / "custom.html").exists()
        assert str(out) == str(tmp_path / "custom.html")

    def test_missing_run_dir_raises_typed_error(self, tmp_path):
        with pytest.raises(SerializationError):
            render_html_report(tmp_path)

    def test_missing_audit_raises_typed_error(self, run_dir, tmp_path):
        import shutil

        clone = tmp_path / "no-audit"
        shutil.copytree(run_dir, clone)
        (clone / "audit.jsonl").unlink()
        with pytest.raises(SerializationError):
            render_html_report(clone)
