"""Tests for the run reports."""

import pytest

from repro.analysis.report import comparison_report, run_report
from repro.errors import ConfigError
from repro.runtime.metrics import IterationMetrics, RunResult


def _result(policy="greengpu", energy=1000.0, total_s=10.0, n=3, spin=0.0):
    iterations = [
        IterationMetrics(i, 0.2, 1.0, 2.0, 2.0, energy / n, energy / n * 0.6,
                         energy / n * 0.4)
        for i in range(n)
    ]
    return RunResult(
        workload="kmeans", policy=policy, iterations=iterations,
        total_s=total_s, total_energy_j=energy,
        gpu_energy_j=0.6 * energy, cpu_energy_j=0.4 * energy,
        cpu_spin_s=spin, cpu_spin_energy_j=spin * 50.0, final_ratio=0.2,
    )


class TestRunReport:
    def test_contains_totals(self):
        report = run_report(_result())
        assert "workload : kmeans" in report
        assert "policy   : greengpu" in report
        assert "1.00 kJ" in report

    def test_spin_line_only_when_spinning(self):
        assert "spin" not in run_report(_result(spin=0.0))
        assert "spin" in run_report(_result(spin=5.0))

    def test_row_truncation(self):
        report = run_report(_result(n=30), max_rows=5)
        assert "... 25 more iterations" in report

    def test_rejects_bad_max_rows(self):
        with pytest.raises(ConfigError):
            run_report(_result(), max_rows=0)


class TestComparisonReport:
    def test_savings_relative_to_baseline(self):
        base = _result(policy="rodinia-default", energy=1000.0)
        green = _result(policy="greengpu", energy=800.0)
        report = comparison_report([base, green])
        assert "+20.00%" in report
        assert "rodinia-default" in report and "greengpu" in report

    def test_baseline_shows_zero(self):
        base = _result(policy="base")
        report = comparison_report([base])
        assert "+0.00%" in report

    def test_validation(self):
        with pytest.raises(ConfigError):
            comparison_report([])
        with pytest.raises(ConfigError):
            comparison_report([_result()], baseline_index=5)
        with pytest.raises(ConfigError):
            comparison_report([_result()], baseline_index=-1)

    def test_nonzero_baseline_index(self):
        first = _result(policy="greengpu", energy=800.0)
        base = _result(policy="best-performance", energy=1000.0)
        report = comparison_report([first, base], baseline_index=1)
        # Savings are computed against the *selected* baseline, not
        # positionally against row 0.
        assert "baseline: best-performance" in report
        assert "+20.00%" in report

    def test_nonzero_baseline_row_shows_zero(self):
        rows = [_result(policy="a", energy=500.0),
                _result(policy="b", energy=1000.0),
                _result(policy="c", energy=750.0)]
        report = comparison_report(rows, baseline_index=2)
        assert "baseline: c" in report
        assert "+0.00%" in report
