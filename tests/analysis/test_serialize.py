"""Tests for JSON result serialization."""

import numpy as np
import pytest

from repro.analysis import serialize
from repro.errors import ConfigError, SerializationError
from repro.runtime.metrics import IterationMetrics, RunResult
from repro.sim.trace import Trace


def _result():
    return RunResult(
        workload="kmeans",
        policy="greengpu",
        iterations=[
            IterationMetrics(0, 0.3, 1.5, 2.0, 2.1, 500.0, 300.0, 200.0),
            IterationMetrics(1, 0.25, 1.2, 2.0, 2.0, 480.0, 290.0, 190.0),
        ],
        total_s=4.1,
        total_energy_j=980.0,
        gpu_energy_j=590.0,
        cpu_energy_j=390.0,
        cpu_spin_s=1.0,
        cpu_spin_energy_j=55.0,
        cpu_energy_emulated_idle_spin_j=350.0,
        final_ratio=0.25,
        traces={
            "gpu_f_core": Trace(
                "gpu_f_core", np.array([0.0, 1.0]), np.array([3.0e8, 5.76e8])
            )
        },
    )


class TestRoundTrip:
    def test_scalar_fields_survive(self):
        original = _result()
        restored = serialize.loads(serialize.dumps(original))
        assert restored.workload == original.workload
        assert restored.policy == original.policy
        assert restored.total_energy_j == original.total_energy_j
        assert restored.final_ratio == original.final_ratio
        assert restored.cpu_spin_s == original.cpu_spin_s

    def test_iterations_survive(self):
        restored = serialize.loads(serialize.dumps(_result()))
        assert restored.n_iterations == 2
        assert restored.iterations[1].r == 0.25
        assert restored.iterations[0].energy_j == 500.0

    def test_traces_survive(self):
        restored = serialize.loads(serialize.dumps(_result()))
        trace = restored.traces["gpu_f_core"]
        assert isinstance(trace, Trace)
        assert trace.values[1] == 5.76e8

    def test_derived_metrics_work_after_restore(self):
        restored = serialize.loads(serialize.dumps(_result()))
        assert restored.average_power_w == pytest.approx(980.0 / 4.1)
        assert restored.ratios().tolist() == [0.3, 0.25]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "result.json"
        serialize.save(_result(), str(path))
        restored = serialize.load(str(path))
        assert restored.total_s == 4.1

    def test_unknown_schema_rejected(self):
        import json

        data = serialize.result_to_dict(_result())
        data["schema"] = 999
        with pytest.raises(ConfigError):
            serialize.result_from_dict(data)

    def test_json_is_stable_text(self):
        a = serialize.dumps(_result())
        b = serialize.dumps(_result())
        assert a == b
        assert '"workload": "kmeans"' in a


class TestCorruptFiles:
    """A killed writer must surface as a typed, path-carrying error."""

    def test_truncated_file_names_path(self, tmp_path):
        path = tmp_path / "result.json"
        serialize.save(_result(), str(path))
        # Simulate a writer killed mid-write (pre-atomic-save legacy file).
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(SerializationError) as excinfo:
            serialize.load(str(path))
        assert str(path) in str(excinfo.value)

    def test_garbage_file_names_path(self, tmp_path):
        path = tmp_path / "result.json"
        path.write_text("not json at all {{{")
        with pytest.raises(SerializationError, match="result.json"):
            serialize.load(str(path))

    def test_empty_file_names_path(self, tmp_path):
        path = tmp_path / "result.json"
        path.write_text("")
        with pytest.raises(SerializationError, match="result.json"):
            serialize.load(str(path))

    def test_loads_reports_corruption(self):
        with pytest.raises(SerializationError, match="corrupt or truncated"):
            serialize.loads('{"workload": "kme')

    def test_serialization_error_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(SerializationError, ReproError)

    def test_save_is_atomic_no_tmp_droppings(self, tmp_path):
        import os

        path = tmp_path / "result.json"
        serialize.save(_result(), str(path))
        assert sorted(os.listdir(tmp_path)) == ["result.json"]


class TestHealthRoundTrip:
    def test_health_counters_survive(self):
        from repro.faults.health import ControlHealth

        original = _result()
        original.health = ControlHealth(
            monitor_faults=4, actuation_faults=1, retries=2,
            fallbacks=3, skipped_ticks=1, degraded_entries=1,
            recoveries=1, frozen_divisions=2,
        )
        restored = serialize.loads(serialize.dumps(original))
        assert restored.health.as_dict() == original.health.as_dict()
        assert not restored.health.degraded  # entries == recoveries

    def test_missing_health_defaults_to_clean(self):
        data = serialize.result_to_dict(_result())
        del data["health"]  # file written before hardening existed
        restored = serialize.result_from_dict(data)
        assert restored.health.total_events == 0
