"""Tests for the text table formatter."""

import pytest

from repro.analysis.tables import format_table
from repro.errors import ConfigError


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in out
        assert "3.250" in out

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment(self):
        out = format_table(["col"], [["short"], ["much-longer-cell"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2]) or lines[2].startswith("short")

    def test_custom_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.23" not in out

    def test_ints_not_float_formatted(self):
        out = format_table(["x"], [[7]])
        assert "7" in out and "7.000" not in out

    def test_rejects_width_mismatch(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [[1]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ConfigError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
