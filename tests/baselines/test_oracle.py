"""Tests for the exhaustive oracle baselines."""

import pytest

from repro.baselines.oracle import oracle_frequency_search, oracle_search
from repro.core.policies import BestPerformancePolicy
from repro.runtime.executor import run_workload
from tests.conftest import fast_workload


@pytest.fixture(scope="module")
def pf_oracle():
    """Pathfinder: low utilizations, so the oracle must throttle a lot."""
    return oracle_frequency_search(fast_workload("pathfinder"), n_iterations=1)


class TestFrequencyOracle:
    def test_covers_all_36_pairs(self, pf_oracle):
        assert pf_oracle.evaluated == 36

    def test_beats_best_performance_on_low_util_workload(self, pf_oracle):
        base = run_workload(
            fast_workload("pathfinder"), BestPerformancePolicy(), n_iterations=1
        )
        assert pf_oracle.energy_j < base.total_energy_j

    def test_oracle_throttles_low_util_workload(self, pf_oracle):
        assert pf_oracle.core_level > 0
        assert pf_oracle.mem_level > 0

    def test_oracle_keeps_saturated_workload_fast(self):
        result = oracle_frequency_search(fast_workload("bfs"), n_iterations=1)
        assert result.core_level <= 1 and result.mem_level <= 1

    def test_slowdown_constraint_respected(self):
        constrained = oracle_frequency_search(
            fast_workload("pathfinder"), n_iterations=1, max_slowdown=0.02
        )
        base = run_workload(
            fast_workload("pathfinder"), BestPerformancePolicy(), n_iterations=1
        )
        assert constrained.result.slowdown_vs(base) <= 0.02 + 1e-9


class TestJointOracle:
    def test_joint_search_finds_division_for_hotspot(self):
        """Hotspot's big win is division; the joint oracle must pick a
        non-zero CPU share."""
        result = oracle_search(
            fast_workload("hotspot"), ratios=[0.0, 0.5], n_iterations=1
        )
        assert result.r == 0.5
        assert result.evaluated == 72

    def test_rejects_empty_ratio_grid(self):
        import pytest as _pytest
        from repro.errors import ConfigError

        with _pytest.raises(ConfigError):
            oracle_search(fast_workload("lud"), ratios=[], n_iterations=1)
