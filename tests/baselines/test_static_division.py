"""Tests for the static division sweep baseline."""

import pytest

from repro.baselines.static_division import best_point, sweep_divisions
from repro.errors import ConfigError
from tests.conftest import FAST_SCALE, fast_workload


@pytest.fixture(scope="module")
def kmeans_sweep():
    w = fast_workload("kmeans")
    return sweep_divisions(w, ratios=[0.0, 0.1, 0.15, 0.2, 0.4, 0.7], n_iterations=2)


class TestSweep:
    def test_one_point_per_ratio(self, kmeans_sweep):
        assert [p.r for p in kmeans_sweep] == [0.0, 0.1, 0.15, 0.2, 0.4, 0.7]

    def test_u_shape_for_kmeans(self, kmeans_sweep):
        """Paper Fig. 2: interior minimum beats both extremes."""
        energies = {p.r: p.energy_j for p in kmeans_sweep}
        assert energies[0.15] < energies[0.0]
        assert energies[0.15] < energies[0.7]

    def test_best_point(self, kmeans_sweep):
        assert best_point(kmeans_sweep).r == pytest.approx(0.15)

    def test_energy_and_time_positive(self, kmeans_sweep):
        for p in kmeans_sweep:
            assert p.energy_j > 0.0 and p.time_s > 0.0

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            sweep_divisions(fast_workload("kmeans"), ratios=[1.2], n_iterations=1)

    def test_best_point_empty_raises(self):
        with pytest.raises(ConfigError):
            best_point([])

    def test_default_grid(self):
        w = fast_workload("lud")
        points = sweep_divisions(w, ratios=[0.0, 0.05], n_iterations=1)
        assert len(points) == 2
