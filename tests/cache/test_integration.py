"""End-to-end cache behavior through the executor and the harness."""

import pytest

from repro.analysis.serialize import result_to_dict
from repro.cache import ResultCache, job_key, run_key
from repro.core.policies import GreenGpuPolicy
from repro.experiments.common import (
    scaled_config,
    scaled_options,
    scaled_workload,
)
from repro.harness.job import JobSpec, JobState
from repro.harness.journal import JOURNAL_NAME, read_journal
from repro.harness.supervisor import run_jobs
from repro.runtime.executor import run_workload
from repro.sim.platform import make_testbed

TESTJOBS = "repro.harness._testjobs"


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _run(cache=None, **kwargs):
    time_scale = 0.05
    return run_workload(
        scaled_workload("kmeans", time_scale),
        GreenGpuPolicy(config=scaled_config(time_scale)),
        n_iterations=1,
        options=scaled_options(time_scale),
        cache=cache,
        **kwargs,
    )


class TestExecutorCache:
    def test_second_run_served_from_cache(self, cache):
        first = _run(cache)
        assert cache.stores == 1
        second = _run(cache)
        assert cache.hits == 1
        assert result_to_dict(second) == result_to_dict(first)

    def test_no_cache_means_no_files(self, cache):
        _run(None)
        assert cache.stats().entries == 0

    def test_live_system_bypasses_cache(self, cache):
        _run(cache)
        _run(cache, system=make_testbed())
        # Neither served nor stored for the instrumented run.
        assert cache.hits == 0
        assert cache.stores == 1

    def test_telemetry_run_stores_but_is_not_served(self, cache):
        from repro.telemetry import Telemetry

        _run(cache, telemetry=Telemetry())
        assert cache.stores == 1
        _run(cache, telemetry=Telemetry())
        assert cache.hits == 0
        assert cache.stores == 2

    def test_telemetry_snapshot_stored_alongside_result(self, cache):
        from repro.telemetry import Telemetry

        _run(cache, telemetry=Telemetry())
        wl = scaled_workload("kmeans", 0.05)
        key = run_key(wl, GreenGpuPolicy(config=scaled_config(0.05)), 1,
                      options=scaled_options(0.05))
        entry = cache.get(key)
        assert "telemetry" in entry

    def test_corrupt_entry_recomputed(self, cache):
        first = _run(cache)
        wl = scaled_workload("kmeans", 0.05)
        key = run_key(wl, GreenGpuPolicy(config=scaled_config(0.05)), 1,
                      options=scaled_options(0.05))
        path = cache.root / key[:2] / f"{key}.json"
        assert path.is_file()
        path.write_text("garbage")
        second = _run(cache)
        assert result_to_dict(second) == result_to_dict(first)
        assert cache.stores == 2  # recomputed and re-stored


def ok_spec(name, value, keyed=True):
    target = f"{TESTJOBS}:ok"
    kwargs = {"value": value}
    return JobSpec(name=name, target=target, kwargs=kwargs,
                   cache_key=job_key(target, kwargs) if keyed else None)


class TestHarnessCache:
    def test_second_run_serves_cached_payloads(self, tmp_path, cache):
        specs = [ok_spec("a", 1), ok_spec("b", 2)]
        first = run_jobs(specs, tmp_path / "run1", isolate=False, cache=cache)
        assert first.report.ok and first.report.cached == 0
        assert cache.stores == 2

        second = run_jobs(specs, tmp_path / "run2", isolate=False, cache=cache)
        assert second.report.ok
        assert second.report.cached == 2
        assert second.report.succeeded == 0
        for name in ("a", "b"):
            assert second.outcomes[name].state is JobState.SKIPPED_CACHED
        assert second.payloads == first.payloads

    def test_unkeyed_jobs_always_run(self, tmp_path, cache):
        specs = [ok_spec("a", 1, keyed=False)]
        run_jobs(specs, tmp_path / "run1", isolate=False, cache=cache)
        second = run_jobs(specs, tmp_path / "run2", isolate=False, cache=cache)
        assert second.report.cached == 0
        assert second.outcomes["a"].state is JobState.SUCCEEDED

    def test_cache_hit_journaled(self, tmp_path, cache):
        specs = [ok_spec("a", 1)]
        run_jobs(specs, tmp_path / "run1", isolate=False, cache=cache)
        run_jobs(specs, tmp_path / "run2", isolate=False, cache=cache)
        events = read_journal(tmp_path / "run2" / JOURNAL_NAME)
        skips = [e for e in events if e.get("event") == "job_skipped"
                 and e.get("reason") == "cache"]
        assert len(skips) == 1
        assert skips[0]["cache_key"] == specs[0].cache_key

    def test_cached_satisfies_dependencies(self, tmp_path, cache):
        upstream = ok_spec("up", 1)
        specs = [upstream,
                 JobSpec(name="down", target=f"{TESTJOBS}:ok",
                         kwargs={"value": 2}, depends_on=("up",))]
        run_jobs([upstream], tmp_path / "run1", isolate=False, cache=cache)
        result = run_jobs(specs, tmp_path / "run2", isolate=False, cache=cache)
        assert result.outcomes["up"].state is JobState.SKIPPED_CACHED
        assert result.outcomes["down"].state is JobState.SUCCEEDED

    def test_resume_takes_precedence_over_cache(self, tmp_path, cache):
        specs = [ok_spec("a", 1)]
        run_dir = tmp_path / "run"
        run_jobs(specs, run_dir, isolate=False, cache=cache)
        resumed = run_jobs(specs, run_dir, isolate=False, resume=True,
                           cache=cache)
        assert resumed.outcomes["a"].state is JobState.SKIPPED_RESUMED
        assert resumed.report.cached == 0
