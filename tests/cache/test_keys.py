"""Tests for cache-key derivation: canonicalization and sensitivity."""

import dataclasses
import enum

import pytest

from repro.cache import canonicalize, fingerprint, job_key, run_key
from repro.core.policies import BestPerformancePolicy, GreenGpuPolicy
from repro.errors import ConfigError
from repro.experiments.common import (
    scaled_config,
    scaled_options,
    scaled_workload,
)
from repro.faults.injector import fault_profile


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass(frozen=True)
class Point:
    x: float
    y: float


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize(None) is None
        assert canonicalize(True) is True
        assert canonicalize(3) == 3
        assert canonicalize(1.5) == 1.5
        assert canonicalize("s") == "s"

    def test_nonfinite_floats_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigError):
                canonicalize(bad)

    def test_enum_tagged_by_type(self):
        assert canonicalize(Color.RED) == {"__enum__": "Color", "value": "red"}

    def test_dataclass_tagged_by_class_name(self):
        assert canonicalize(Point(1.0, 2.0)) == {
            "__kind__": "Point", "x": 1.0, "y": 2.0
        }

    def test_dict_keys_sorted_and_string_only(self):
        assert list(canonicalize({"b": 1, "a": 2})) == ["a", "b"]
        with pytest.raises(ConfigError):
            canonicalize({1: "x"})

    def test_tuples_become_lists(self):
        assert canonicalize((1, 2)) == [1, 2]

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            canonicalize(object())
        with pytest.raises(ConfigError):
            canonicalize(lambda: None)

    def test_cache_state_protocol(self):
        class Ladder:
            def cache_state(self):
                return (1.0, 2.0)

        assert canonicalize(Ladder()) == {"__kind__": "Ladder",
                                          "state": [1.0, 2.0]}


class TestFingerprint:
    def test_deterministic_across_dict_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_distinct_values_distinct_digests(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_is_hex_sha256(self):
        digest = fingerprint("x")
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)


def _key(workload="kmeans", policy=None, n_iterations=2, time_scale=0.05,
         warmup_s=0.0):
    wl = scaled_workload(workload, time_scale)
    if policy is None:
        policy = GreenGpuPolicy(config=scaled_config(time_scale))
    return run_key(wl, policy, n_iterations,
                   options=scaled_options(time_scale), warmup_s=warmup_s)


class TestRunKey:
    def test_deterministic(self):
        assert _key() == _key()
        assert _key() is not None

    def test_sensitive_to_workload(self):
        assert _key(workload="kmeans") != _key(workload="hotspot")

    def test_sensitive_to_policy_type(self):
        assert _key() != _key(policy=BestPerformancePolicy())

    def test_sensitive_to_policy_config(self):
        assert _key(time_scale=0.05) != _key(time_scale=0.1)

    def test_sensitive_to_iterations(self):
        assert _key(n_iterations=2) != _key(n_iterations=3)

    def test_sensitive_to_warmup(self):
        assert _key(warmup_s=0.0) != _key(warmup_s=1.0)

    def test_sensitive_to_fault_plan_and_seed(self):
        base = GreenGpuPolicy(config=scaled_config(0.05))
        faulted0 = base.with_faults(fault_profile("moderate", seed=0))
        faulted1 = base.with_faults(fault_profile("moderate", seed=1))
        keys = {_key(policy=p) for p in (base, faulted0, faulted1)}
        assert len(keys) == 3

    def test_none_iterations_resolves_to_default(self):
        wl = scaled_workload("kmeans", 0.05)
        policy = GreenGpuPolicy(config=scaled_config(0.05))
        options = scaled_options(0.05)
        assert (run_key(wl, policy, None, options=options)
                == run_key(wl, policy, wl.default_iterations, options=options))

    def test_workload_without_fingerprint_is_uncacheable(self):
        class Opaque:
            pass

        assert run_key(Opaque(), GreenGpuPolicy(), 1) is None

    def test_workload_opting_out_is_uncacheable(self):
        class OptOut:
            def cache_fingerprint(self):
                return None

        assert run_key(OptOut(), GreenGpuPolicy(), 1) is None

    def test_uncanonicalizable_policy_is_uncacheable(self):
        wl = scaled_workload("kmeans", 0.05)
        assert run_key(wl, object(), 2) is None


class TestJobKey:
    def test_deterministic_and_sensitive(self):
        k = job_key("m:f", {"a": 1})
        assert k == job_key("m:f", {"a": 1})
        assert k != job_key("m:g", {"a": 1})
        assert k != job_key("m:f", {"a": 2})

    def test_uncanonicalizable_kwargs_uncacheable(self):
        assert job_key("m:f", {"a": object()}) is None

    def test_engine_schema_version_in_key(self, monkeypatch):
        import repro.cache.keys as keys_mod

        before = job_key("m:f", {})
        monkeypatch.setattr(keys_mod, "ENGINE_SCHEMA_VERSION",
                            keys_mod.ENGINE_SCHEMA_VERSION + 1)
        assert job_key("m:f", {}) != before
