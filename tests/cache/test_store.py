"""Tests for the on-disk content-addressed store."""

import json
import os

import pytest

from repro.cache import CacheStats, ResultCache, default_cache_dir
from repro.cache.store import CACHE_SCHEMA_VERSION
from repro.errors import ConfigError

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_put_get(self, cache):
        cache.put(KEY_A, {"result": {"x": 1}})
        entry = cache.get(KEY_A)
        assert entry["result"] == {"x": 1}
        assert entry["key"] == KEY_A
        assert entry["cache_schema"] == CACHE_SCHEMA_VERSION
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_on_absent_key(self, cache):
        assert cache.get(KEY_A) is None
        assert cache.misses == 1

    def test_sharded_layout(self, cache):
        cache.put(KEY_A, {"result": 1})
        assert (cache.root / KEY_A[:2] / f"{KEY_A}.json").is_file()

    def test_put_overwrites(self, cache):
        cache.put(KEY_A, {"result": 1})
        cache.put(KEY_A, {"result": 2})
        assert cache.get(KEY_A)["result"] == 2

    def test_malformed_key_rejected(self, cache):
        for bad in ("", "ab", "../../etc/passwd", "XYZ123"):
            with pytest.raises(ConfigError):
                cache.get(bad)


class TestCorruption:
    def _entry_path(self, cache, key=KEY_A):
        return cache.root / key[:2] / f"{key}.json"

    def test_truncated_json_quarantined(self, cache):
        cache.put(KEY_A, {"result": 1})
        path = self._entry_path(cache)
        path.write_text(path.read_text()[:10])
        assert cache.get(KEY_A) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_recompute_after_quarantine(self, cache):
        cache.put(KEY_A, {"result": 1})
        self._entry_path(cache).write_text("{not json")
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, {"result": 2})  # the "recompute"
        assert cache.get(KEY_A)["result"] == 2

    def test_wrong_embedded_key_quarantined(self, cache):
        cache.put(KEY_B, {"result": 1})
        src = self._entry_path(cache, KEY_B)
        dst = self._entry_path(cache, KEY_A)
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)  # entry now lies about its address
        assert cache.get(KEY_A) is None
        assert dst.with_suffix(".corrupt").exists()

    def test_future_schema_quarantined(self, cache):
        cache.put(KEY_A, {"result": 1})
        path = self._entry_path(cache)
        doc = json.loads(path.read_text())
        doc["cache_schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        assert cache.get(KEY_A) is None

    def test_non_dict_document_quarantined(self, cache):
        path = self._entry_path(cache)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        assert cache.get(KEY_A) is None


class TestAdmin:
    def test_stats_empty(self, cache):
        stats = cache.stats()
        assert stats == CacheStats(root=str(cache.root), entries=0,
                                   total_bytes=0, corrupt=0)

    def test_stats_counts_entries_and_corrupt(self, cache):
        cache.put(KEY_A, {"result": 1})
        cache.put(KEY_B, {"result": 2})
        (cache.root / KEY_A[:2] / f"{KEY_A}.json").write_text("broken")
        cache.get(KEY_A)  # quarantines
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.corrupt == 1
        assert stats.total_bytes > 0

    def test_clear_removes_everything(self, cache):
        cache.put(KEY_A, {"result": 1})
        cache.put(KEY_B, {"result": 2})
        expected_bytes = cache.stats().total_bytes
        cleared = cache.clear()
        assert cleared.entries == 2
        assert cleared.files == 2
        assert cleared.reclaimed_bytes == expected_bytes
        assert cache.stats().entries == 0
        assert cache.get(KEY_A) is None

    def test_clear_counts_quarantined_files_separately(self, cache):
        cache.put(KEY_A, {"result": 1})
        (cache.root / KEY_B[:2]).mkdir(parents=True, exist_ok=True)
        (cache.root / KEY_B[:2] / f"{KEY_B}.corrupt").write_text("junk")
        cleared = cache.clear()
        assert cleared.entries == 1
        assert cleared.files == 2
        assert cleared.reclaimed_bytes > 0

    def test_clear_on_missing_root(self, cache):
        cleared = cache.clear()
        assert (cleared.entries, cleared.files, cleared.reclaimed_bytes) == (0, 0, 0)


class TestDefaultDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("GREENGPU_CACHE_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"

    def test_env_override_expands_tilde(self, monkeypatch):
        # Parity with --cache-dir, where the shell expands ~ before we
        # ever see it; env vars set from CI YAML or unit files don't.
        monkeypatch.setenv("GREENGPU_CACHE_DIR", "~/elsewhere")
        assert default_cache_dir() == os.path.join(
            os.path.expanduser("~"), "elsewhere"
        )

    def test_falls_back_to_home(self, monkeypatch):
        monkeypatch.delenv("GREENGPU_CACHE_DIR", raising=False)
        assert default_cache_dir().endswith(os.path.join(".cache", "greengpu"))
