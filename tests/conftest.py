"""Shared fixtures for the GreenGPU reproduction test suite.

Fast variants of the workloads (seconds-scale iterations) keep the full
suite quick while exercising identical code paths; the experiment tests
that need paper-scale dynamics scale the controller periods down with
the same factor, preserving the control-loop ratios.
"""

from __future__ import annotations

import pytest
from hypothesis import settings as _hypothesis_settings

from repro.core.config import GreenGpuConfig
from repro.runtime.executor import ExecutorOptions
from repro.sim.calibration import (
    default_testbed_config,
    geforce_8800_gtx_spec,
    phenom_ii_x2_spec,
)
from repro.sim.platform import HeteroSystem, make_testbed
from repro.workloads.characteristics import make_workload

#: One simulated-time scale used across the suite's fast runs.
FAST_SCALE = 0.05

# Nightly CI runs the property suites at `--hypothesis-profile=ci-long`
# for a deeper search than the default per-test example counts; the
# profile must be registered before pytest tries to select it.
_hypothesis_settings.register_profile("ci-long", max_examples=200,
                                      deadline=None)


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path_factory, monkeypatch):
    """Keep the result cache out of ``~/.cache`` and out of other tests.

    CLI commands consult the content-addressed cache by default; tests
    must neither pollute the user's real cache nor serve each other
    stale results across parametrizations.
    """
    monkeypatch.setenv(
        "GREENGPU_CACHE_DIR", str(tmp_path_factory.mktemp("result-cache"))
    )


@pytest.fixture
def gpu_spec():
    return geforce_8800_gtx_spec()


@pytest.fixture
def cpu_spec():
    return phenom_ii_x2_spec()


@pytest.fixture
def testbed() -> HeteroSystem:
    return make_testbed()


@pytest.fixture
def testbed_config():
    return default_testbed_config()


@pytest.fixture
def fast_config() -> GreenGpuConfig:
    """Controller periods scaled to match the fast workloads."""
    return GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE,
        ondemand_interval_s=0.1 * FAST_SCALE,
    )


@pytest.fixture
def fast_options() -> ExecutorOptions:
    return ExecutorOptions(repartition_overhead_s=0.5 * FAST_SCALE)


def fast_workload(name: str, **overrides):
    """Module-level helper: a Table II workload at the fast time scale."""
    from repro.workloads.characteristics import get_profile

    seconds = get_profile(name).gpu_seconds_per_iteration * FAST_SCALE
    return make_workload(name, gpu_seconds_per_iteration=seconds, **overrides)


@pytest.fixture
def fast_kmeans():
    return fast_workload("kmeans")


@pytest.fixture
def fast_hotspot():
    return fast_workload("hotspot")


@pytest.fixture
def fast_streamcluster():
    return fast_workload("streamcluster")
