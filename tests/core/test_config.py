"""Tests for the GreenGPU configuration bundle."""

import pytest

from repro.core.config import GreenGpuConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_published_values(self):
        cfg = GreenGpuConfig()
        assert cfg.alpha_core == 0.15
        assert cfg.alpha_mem == 0.02
        assert cfg.phi == 0.3
        assert cfg.beta == 0.2
        assert cfg.scaling_interval_s == 3.0
        assert cfg.division_step == 0.05
        assert cfg.initial_cpu_ratio == 0.30
        assert cfg.min_division_scaling_ratio == 40.0

    def test_min_iteration_length_honours_decoupling(self):
        cfg = GreenGpuConfig()
        assert cfg.min_iteration_length_s() == pytest.approx(120.0)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("alpha_core", -0.1), ("alpha_core", 1.1),
        ("alpha_mem", 2.0), ("phi", -1.0),
        ("beta", 0.0), ("beta", 1.0),
        ("scaling_interval_s", 0.0),
        ("ondemand_up_threshold", 0.0), ("ondemand_up_threshold", 1.1),
        ("ondemand_interval_s", -1.0),
        ("division_step", 0.0), ("division_step", 0.6),
        ("min_division_scaling_ratio", 0.5),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ConfigError):
            GreenGpuConfig(**{field: value})

    def test_down_threshold_must_be_below_up(self):
        with pytest.raises(ConfigError):
            GreenGpuConfig(ondemand_up_threshold=0.5, ondemand_down_threshold=0.6)

    def test_initial_ratio_must_be_within_bounds(self):
        with pytest.raises(ConfigError):
            GreenGpuConfig(initial_cpu_ratio=0.99, max_cpu_ratio=0.95)

    def test_ratio_bounds_ordered(self):
        with pytest.raises(ConfigError):
            GreenGpuConfig(min_cpu_ratio=0.5, max_cpu_ratio=0.4)


class TestWith:
    def test_with_replaces_and_validates(self):
        cfg = GreenGpuConfig().with_(beta=0.5)
        assert cfg.beta == 0.5
        with pytest.raises(ConfigError):
            GreenGpuConfig().with_(beta=2.0)

    def test_with_leaves_original_untouched(self):
        cfg = GreenGpuConfig()
        cfg.with_(phi=0.9)
        assert cfg.phi == 0.3
