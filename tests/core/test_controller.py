"""Tests for the assembled two-tier controller."""

import pytest

from repro.core.controller import GreenGpuController, TierMode
from repro.errors import SimulationError
from repro.sim.trace import TraceRecorder


class TestTierMode:
    def test_holistic_enables_both(self):
        assert TierMode.HOLISTIC.division_enabled
        assert TierMode.HOLISTIC.scaling_enabled

    def test_division_only(self):
        assert TierMode.DIVISION_ONLY.division_enabled
        assert not TierMode.DIVISION_ONLY.scaling_enabled

    def test_scaling_only(self):
        assert not TierMode.SCALING_ONLY.division_enabled
        assert TierMode.SCALING_ONLY.scaling_enabled

    def test_none_disables_both(self):
        assert not TierMode.NONE.division_enabled
        assert not TierMode.NONE.scaling_enabled


class TestLifecycle:
    def test_attach_builds_components(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.HOLISTIC, fast_config)
        ctrl.attach(testbed)
        assert ctrl.scaler is not None
        assert ctrl.governor is not None
        assert ctrl.divider is not None
        ctrl.detach()

    def test_none_mode_builds_nothing(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.NONE, fast_config)
        ctrl.attach(testbed)
        assert ctrl.scaler is None and ctrl.divider is None

    def test_double_attach_raises(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.NONE, fast_config)
        ctrl.attach(testbed)
        with pytest.raises(SimulationError):
            ctrl.attach(testbed)

    def test_detach_cancels_ticks(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config)
        ctrl.attach(testbed)
        scaler = ctrl.scaler  # detach() drops the reference; keep ours
        ctrl.detach()
        decisions_before = scaler.decisions
        testbed.run_for(10 * fast_config.scaling_interval_s)
        assert scaler.decisions == decisions_before

    def test_detach_resets_learned_state(self, testbed, fast_config):
        """detach -> attach must not leak weights/ratio into the new run."""
        ctrl = GreenGpuController(
            TierMode.HOLISTIC, fast_config, initial_ratio=0.30
        )
        ctrl.attach(testbed)
        ctrl.on_iteration_end(tc=10.0, tg=1.0)   # learn: ratio moves off 0.30
        testbed.run_for(3 * fast_config.scaling_interval_s)  # scaler steps
        assert ctrl.ratio != pytest.approx(0.30)
        ctrl.detach()
        assert ctrl.scaler is None
        assert ctrl.governor is None
        assert ctrl.divider is None

        from repro.sim.platform import make_testbed

        fresh = make_testbed()
        ctrl.attach(fresh)
        assert ctrl.ratio == pytest.approx(0.30)       # divider re-seeded
        assert ctrl.scaler.decisions == 0              # fresh WMA state
        ctrl.detach()


class TestScalingLoop:
    def test_idle_system_throttles_gpu_to_floor(self, testbed, fast_config):
        testbed.gpu.set_peak()
        ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config)
        ctrl.attach(testbed)
        testbed.run_for(10 * fast_config.scaling_interval_s)
        assert testbed.gpu.f_core == testbed.gpu.spec.core_ladder.floor
        assert testbed.gpu.f_mem == testbed.gpu.spec.mem_ladder.floor

    def test_idle_cpu_walks_down(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config)
        ctrl.attach(testbed)
        testbed.run_for(20 * fast_config.ondemand_interval_s)
        assert testbed.cpu.f == testbed.cpu.spec.ladder.floor

    def test_spinning_cpu_stays_at_peak(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config)
        ctrl.attach(testbed)
        testbed.cpu.spin()
        testbed.run_for(20 * fast_config.ondemand_interval_s)
        assert testbed.cpu.f == testbed.cpu.spec.ladder.peak

    def test_recorder_collects_channels(self, testbed, fast_config):
        rec = TraceRecorder()
        ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config, recorder=rec)
        ctrl.attach(testbed)
        testbed.run_for(3 * fast_config.scaling_interval_s)
        for channel in ("gpu_u_core", "gpu_f_core", "gpu_f_mem", "cpu_f"):
            assert channel in rec


class TestDivisionBoundary:
    def test_ratio_updates_on_iteration_end(self, testbed, fast_config):
        ctrl = GreenGpuController(
            TierMode.DIVISION_ONLY, fast_config, initial_ratio=0.30
        )
        ctrl.attach(testbed)
        r = ctrl.on_iteration_end(tc=10.0, tg=1.0)
        assert r == pytest.approx(0.25)
        assert ctrl.ratio == pytest.approx(0.25)

    def test_ratio_fixed_without_division_tier(self, testbed, fast_config):
        ctrl = GreenGpuController(
            TierMode.SCALING_ONLY, fast_config, initial_ratio=0.40
        )
        ctrl.attach(testbed)
        assert ctrl.on_iteration_end(10.0, 1.0) == 0.40

    def test_default_ratio_is_all_gpu(self, fast_config):
        ctrl = GreenGpuController(TierMode.NONE, fast_config)
        assert ctrl.ratio == 0.0
