"""Tests for the tier-1 workload-division algorithm."""

import pytest

from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider
from repro.errors import PartitionError


def fresh(r0=0.30, **cfg):
    return WorkloadDivider(GreenGpuConfig(**cfg) if cfg else None, r0=r0)


class TestBasicRule:
    def test_cpu_slower_moves_work_to_gpu(self):
        d = fresh(r0=0.30)
        decision = d.update(tc=100.0, tg=50.0)
        assert decision.r_next == pytest.approx(0.25)

    def test_gpu_slower_moves_work_to_cpu(self):
        d = fresh(r0=0.30)
        decision = d.update(tc=50.0, tg=100.0)
        assert decision.r_next == pytest.approx(0.35)

    def test_equal_times_hold(self):
        d = fresh(r0=0.30)
        decision = d.update(tc=50.0, tg=50.0)
        assert decision.r_next == pytest.approx(0.30)
        assert not decision.moved

    def test_clamped_at_bounds(self):
        d = fresh(r0=0.0)
        assert d.update(tc=0.0, tg=100.0).r_next == pytest.approx(0.05)
        d2 = fresh(r0=0.95)
        # tc >> tg pushes down, never above max.
        assert d2.update(tc=200.0, tg=1.0).r_next == pytest.approx(0.90)

    def test_rejects_negative_times(self):
        with pytest.raises(PartitionError):
            fresh().update(-1.0, 1.0)

    def test_rejects_bad_initial_ratio(self):
        with pytest.raises(PartitionError):
            fresh(r0=1.5)


class TestOscillationSafeguard:
    def test_paper_example_holds_at_10_90(self):
        """§V-B worked example: at 10/90 with tc < tg, the extrapolated
        15/85 prediction flips the comparison, so the division holds."""
        d = fresh(r0=0.10)
        # Optimal division r* = 0.125: tc = r * k_c with k_c chosen so
        # tc(0.125) = tg(0.125).  At r = 0.10: tc < tg, but at 0.15 the
        # CPU would become the straggler.
        tc, tg = 0.10 * 8.0, 0.90 * 1.0  # tc = 0.8 < tg = 0.9
        decision = d.update(tc, tg)
        assert decision.held_by_safeguard
        assert decision.r_next == pytest.approx(0.10)

    def test_clear_imbalance_not_held(self):
        d = fresh(r0=0.30)
        decision = d.update(tc=10.0, tg=100.0)
        assert not decision.held_by_safeguard
        assert decision.moved

    def test_safeguard_disabled_moves_anyway(self):
        d = fresh(r0=0.10, oscillation_safeguard=False)
        decision = d.update(0.8, 0.9)
        assert decision.r_next == pytest.approx(0.15)

    def test_safeguard_skipped_at_zero_ratio(self):
        """No CPU time exists to extrapolate from at r = 0."""
        d = fresh(r0=0.0)
        decision = d.update(tc=0.0, tg=10.0)
        assert decision.moved
        assert not decision.held_by_safeguard

    def test_hold_counter(self):
        d = fresh(r0=0.10)
        d.update(0.8, 0.9)
        assert d.safeguard_holds == 1


class TestConvergence:
    @staticmethod
    def _simulate(divider, cpu_per_unit, gpu_per_unit, iterations=20):
        """Feedback loop: times derive from the current division."""
        for _ in range(iterations):
            r = divider.r
            tc = r * cpu_per_unit
            tg = (1.0 - r) * gpu_per_unit
            divider.update(tc, tg)
        return divider.r

    def test_converges_near_balance_point(self):
        # cpu 4x slower per unit -> balance at r* = 1/5 = 0.20 (on-grid).
        d = fresh(r0=0.30)
        final = self._simulate(d, 4.0, 1.0)
        assert final == pytest.approx(0.20)

    def test_converges_from_any_initial_ratio(self):
        """Paper §VII-B: convergence is independent of the initial ratio."""
        for r0 in (0.0, 0.15, 0.50, 0.75):
            d = fresh(r0=r0)
            final = self._simulate(d, 4.0, 1.0, iterations=30)
            assert final == pytest.approx(0.20, abs=0.051)

    def test_off_grid_optimum_parks_on_adjacent_point(self):
        # cpu 4.5x slower -> r* = 1/5.5 ~ 0.182, between 0.15 and 0.20.
        d = fresh(r0=0.30)
        final = self._simulate(d, 4.5, 1.0)
        assert final in (pytest.approx(0.15), pytest.approx(0.20))

    def test_no_oscillation_once_settled(self):
        d = fresh(r0=0.30)
        self._simulate(d, 4.5, 1.0, iterations=10)
        settled = [self._simulate(d, 4.5, 1.0, iterations=1) for _ in range(5)]
        assert len(set(settled)) == 1

    def test_converged_property(self):
        d = fresh(r0=0.30)
        assert not d.converged
        self._simulate(d, 4.0, 1.0, iterations=20)
        assert d.converged

    def test_large_step_oscillates_without_safeguard(self):
        """The paper's §V-B warning: a large step with the safeguard off
        bounces around the optimum forever."""
        d = WorkloadDivider(
            GreenGpuConfig(division_step=0.25, oscillation_safeguard=False),
            r0=0.75,
        )
        # cpu 1.5x slower per unit -> balance at r* = 0.4, squarely
        # between the 0.25 grid points.
        ratios = []
        for _ in range(12):
            r = d.r
            ratios.append(r)
            d.update(r * 1.5, (1.0 - r) * 1.0)
        tail = ratios[-6:]
        assert max(tail) - min(tail) >= 0.25

    def test_history_records_every_decision(self):
        d = fresh()
        d.update(1.0, 2.0)
        d.update(2.0, 1.0)
        assert len(d.history) == 2
        assert d.iterations == 2
