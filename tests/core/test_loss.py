"""Tests for the Table-I loss functions."""

import numpy as np
import pytest

from repro.core.loss import component_loss, loss_vector, total_loss_matrix, umean_vector
from repro.errors import ConfigError


class TestUmeanVector:
    def test_endpoints(self):
        um = umean_vector(6)
        assert um[0] == 1.0 and um[-1] == 0.0

    def test_linear_spacing(self):
        um = umean_vector(6)
        assert np.allclose(np.diff(um), -0.2)

    def test_single_level(self):
        assert umean_vector(1) == pytest.approx([1.0])

    def test_rejects_zero_levels(self):
        with pytest.raises(ConfigError):
            umean_vector(0)


class TestComponentLoss:
    def test_exact_match_zero_loss(self):
        assert component_loss(0.6, 0.6, 0.15) == 0.0

    def test_u_above_umean_is_performance_loss(self):
        """Table I: u > umean -> loss = (1 - alpha) * (u - umean)."""
        assert component_loss(0.8, 0.6, 0.15) == pytest.approx(0.85 * 0.2)

    def test_u_below_umean_is_energy_loss(self):
        """Table I: u < umean -> loss = alpha * (umean - u)."""
        assert component_loss(0.4, 0.6, 0.15) == pytest.approx(0.15 * 0.2)

    def test_small_alpha_favours_performance(self):
        """A level that is too slow must look much worse than one that is
        too fast, under the paper's small alphas."""
        too_slow = component_loss(0.9, 0.6, 0.02)
        too_fast = component_loss(0.3, 0.6, 0.02)
        assert too_slow > too_fast

    def test_loss_bounded_to_unit_interval(self):
        assert 0.0 <= component_loss(1.0, 0.0, 0.5) <= 1.0
        assert 0.0 <= component_loss(0.0, 1.0, 0.5) <= 1.0

    @pytest.mark.parametrize("u,umean,alpha", [
        (-0.1, 0.5, 0.5), (1.1, 0.5, 0.5),
        (0.5, -0.1, 0.5), (0.5, 1.1, 0.5),
        (0.5, 0.5, -0.1), (0.5, 0.5, 1.1),
    ])
    def test_rejects_out_of_range(self, u, umean, alpha):
        with pytest.raises(ConfigError):
            component_loss(u, umean, alpha)


class TestLossVector:
    def test_matches_scalar_elementwise(self):
        umeans = umean_vector(6)
        u, alpha = 0.45, 0.15
        vec = loss_vector(u, umeans, alpha)
        expected = [component_loss(u, m, alpha) for m in umeans]
        assert np.allclose(vec, expected)

    def test_minimum_at_closest_umean_above(self):
        """With small alpha, the best level has umean just above u."""
        umeans = umean_vector(6)  # 1.0, 0.8, 0.6, 0.4, 0.2, 0.0
        vec = loss_vector(0.55, umeans, 0.02)
        assert int(np.argmin(vec)) == 2  # umean 0.6

    def test_saturated_utilization_prefers_peak(self):
        vec = loss_vector(1.0, umean_vector(6), 0.15)
        assert int(np.argmin(vec)) == 0

    def test_idle_prefers_floor(self):
        vec = loss_vector(0.0, umean_vector(6), 0.15)
        assert int(np.argmin(vec)) == 5

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigError):
            loss_vector(1.5, umean_vector(3), 0.1)


class TestTotalLossMatrix:
    def test_shape_is_outer(self):
        total = total_loss_matrix(np.zeros(6), np.zeros(4), 0.3)
        assert total.shape == (6, 4)

    def test_blend_formula(self):
        """Eq. 3: phi * l_c + (1 - phi) * l_m."""
        total = total_loss_matrix(np.array([0.4]), np.array([0.8]), 0.3)
        assert total[0, 0] == pytest.approx(0.3 * 0.4 + 0.7 * 0.8)

    def test_phi_extremes(self):
        lc, lm = np.array([0.5, 0.1]), np.array([0.9, 0.2])
        assert np.allclose(total_loss_matrix(lc, lm, 1.0), lc[:, None].repeat(2, 1))
        assert np.allclose(total_loss_matrix(lc, lm, 0.0), lm[None, :].repeat(2, 0))

    def test_losses_stay_in_unit_interval(self):
        lc = loss_vector(0.9, umean_vector(6), 0.15)
        lm = loss_vector(0.1, umean_vector(6), 0.02)
        total = total_loss_matrix(lc, lm, 0.3)
        assert np.all(total >= 0.0) and np.all(total <= 1.0)

    def test_rejects_bad_phi(self):
        with pytest.raises(ConfigError):
            total_loss_matrix(np.zeros(2), np.zeros(2), 1.5)

    def test_rejects_non_1d(self):
        with pytest.raises(ConfigError):
            total_loss_matrix(np.zeros((2, 2)), np.zeros(2), 0.3)
