"""Tests for the ondemand governor reimplementation."""

import pytest

from repro.core.ondemand import OndemandGovernor
from repro.errors import ConfigError
from repro.sim.frequency import FrequencyLadder
from repro.units import ghz


@pytest.fixture
def ladder():
    return FrequencyLadder([ghz(v) for v in (2.8, 2.1, 1.3, 0.8)])


@pytest.fixture
def governor(ladder):
    return OndemandGovernor(ladder)


class TestDecisionRule:
    def test_high_utilization_jumps_to_peak(self, governor, ladder):
        """Paper: 'increases the CPU frequency to the highest available'."""
        d = governor.step(0.95, ladder.floor)
        assert d.f_target == ladder.peak
        assert d.changed

    def test_low_utilization_steps_down_one_level(self, governor, ladder):
        """Paper: 'sets the CPU to run at the next lowest frequency'."""
        d = governor.step(0.1, ladder.peak)
        assert d.f_target == ghz(2.1)

    def test_low_at_floor_stays(self, governor, ladder):
        d = governor.step(0.1, ladder.floor)
        assert d.f_target == ladder.floor
        assert not d.changed

    def test_band_holds_current(self, governor, ladder):
        d = governor.step(0.5, ghz(1.3))
        assert d.f_target == ghz(1.3)
        assert not d.changed

    def test_threshold_boundaries_hold(self, governor, ladder):
        # Exactly at the thresholds is inside the hold band.
        assert not governor.step(0.80, ladder.peak).changed
        assert not governor.step(0.30, ghz(1.3)).changed

    def test_spin_defeats_throttling(self, governor, ladder):
        """The paper's §VII-A observation: a spinning CPU reads 100 %
        utilization, so ondemand never throttles it."""
        f = ladder.peak
        for _ in range(50):
            f = governor.step(1.0, f).f_target
        assert f == ladder.peak

    def test_idle_cpu_walks_down_to_floor(self, governor, ladder):
        f = ladder.peak
        for _ in range(len(ladder)):
            f = governor.step(0.0, f).f_target
        assert f == ladder.floor


class TestBookkeeping:
    def test_tick_and_transition_counters(self, governor, ladder):
        governor.step(0.5, ladder.peak)   # hold
        governor.step(0.0, ladder.peak)   # step down
        assert governor.ticks == 2
        assert governor.transitions == 1

    def test_rejects_bad_utilization(self, governor, ladder):
        with pytest.raises(ConfigError):
            governor.step(1.5, ladder.peak)

    def test_rejects_bad_thresholds(self, ladder):
        with pytest.raises(ConfigError):
            OndemandGovernor(ladder, up_threshold=0.0)
        with pytest.raises(ConfigError):
            OndemandGovernor(ladder, up_threshold=0.5, down_threshold=0.6)
