"""Tests for the policy definitions."""

import pytest

from repro.core.controller import TierMode
from repro.core.policies import (
    BestPerformancePolicy,
    DivisionOnlyPolicy,
    FrequencyScalingOnlyPolicy,
    GreenGpuPolicy,
    Policy,
    RodiniaDefaultPolicy,
    StaticPolicy,
)
from repro.errors import ConfigError


class TestInitialStates:
    def test_rodinia_default_all_gpu_peak(self, testbed):
        policy = RodiniaDefaultPolicy()
        policy.apply_initial_state(testbed)
        assert policy.ratio == 0.0
        assert testbed.gpu.core_level == 0 and testbed.gpu.mem_level == 0
        assert testbed.cpu.level == 0

    def test_best_performance_pins_peak(self, testbed):
        BestPerformancePolicy().apply_initial_state(testbed)
        assert testbed.gpu.f_core == testbed.gpu.spec.core_ladder.peak
        assert testbed.gpu.f_mem == testbed.gpu.spec.mem_ladder.peak

    def test_scaling_only_starts_at_floor(self, testbed):
        """Paper Fig. 5: the run starts at the GPU's lowest clocks."""
        testbed.gpu.set_peak()
        FrequencyScalingOnlyPolicy().apply_initial_state(testbed)
        assert testbed.gpu.f_core == testbed.gpu.spec.core_ladder.floor
        assert testbed.gpu.f_mem == testbed.gpu.spec.mem_ladder.floor

    def test_static_policy_levels(self, testbed):
        StaticPolicy(2, 3, ratio=0.4).apply_initial_state(testbed)
        assert testbed.gpu.core_level == 2
        assert testbed.gpu.mem_level == 3

    def test_none_levels_leave_device_untouched(self, testbed):
        testbed.gpu.set_levels(4, 4)
        Policy(gpu_core_level=None, gpu_mem_level=None, cpu_level=None).apply_initial_state(testbed)
        assert testbed.gpu.core_level == 4 and testbed.gpu.mem_level == 4


class TestModesAndRatios:
    def test_greengpu_is_holistic(self):
        assert GreenGpuPolicy().mode is TierMode.HOLISTIC

    def test_division_only_mode(self):
        assert DivisionOnlyPolicy().mode is TierMode.DIVISION_ONLY

    def test_scaling_only_mode(self):
        assert FrequencyScalingOnlyPolicy().mode is TierMode.SCALING_ONLY

    def test_division_default_initial_ratio_from_config(self):
        assert DivisionOnlyPolicy().ratio == pytest.approx(0.30)

    def test_division_explicit_initial_ratio(self):
        assert DivisionOnlyPolicy(initial_ratio=0.5).ratio == 0.5

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            StaticPolicy(0, 0, ratio=1.5)

    def test_controller_inherits_mode_and_ratio(self):
        ctrl = GreenGpuPolicy(initial_ratio=0.4).make_controller()
        assert ctrl.mode is TierMode.HOLISTIC
        assert ctrl.ratio == 0.4

    def test_policy_names(self):
        assert RodiniaDefaultPolicy().name == "rodinia-default"
        assert "static" in StaticPolicy(1, 2).name
