"""Tests for the core-memory weight table (Eq. 4)."""

import numpy as np
import pytest

from repro.core.weights import WeightTable
from repro.errors import ConfigError


class TestUpdate:
    def test_eq4_single_step(self):
        table = WeightTable(1, 1)
        table.update(np.array([[0.5]]), beta=0.2)
        # w <- 1 * (1 - 0.8 * 0.5) = 0.6
        assert table.weights[0, 0] == pytest.approx(0.6)

    def test_zero_loss_keeps_weight(self):
        table = WeightTable(2, 2)
        table.update(np.zeros((2, 2)), beta=0.2)
        assert np.allclose(table.weights, 1.0)

    def test_max_loss_scales_by_beta(self):
        table = WeightTable(1, 1)
        table.update(np.ones((1, 1)), beta=0.2)
        assert table.weights[0, 0] == pytest.approx(0.2)

    def test_best_pair_tracks_lowest_cumulative_loss(self):
        table = WeightTable(2, 2)
        loss = np.array([[0.5, 0.1], [0.9, 0.7]])
        for _ in range(10):
            table.update(loss, beta=0.2)
        assert table.best_pair() == (0, 1)

    def test_tie_break_prefers_fastest_pair(self):
        table = WeightTable(3, 3)
        table.update(np.zeros((3, 3)), beta=0.5)
        assert table.best_pair() == (0, 0)

    def test_weights_never_reach_zero(self):
        """beta > 0 keeps every multiplicative factor positive."""
        table = WeightTable(2, 2)
        for _ in range(100):
            table.update(np.ones((2, 2)), beta=0.2)
        assert np.all(table.weights > 0.0)

    def test_renormalization_preserves_argmax(self):
        table = WeightTable(2, 2)
        loss = np.array([[0.9, 0.2], [0.95, 0.99]])
        for _ in range(2000):
            table.update(loss, beta=0.2)
        assert table.best_pair() == (0, 1)
        assert table.renormalizations > 0
        assert np.isfinite(table.weights).all()

    def test_update_counter(self):
        table = WeightTable(2, 2)
        table.update(np.zeros((2, 2)), 0.2)
        table.update(np.zeros((2, 2)), 0.2)
        assert table.updates == 2


class TestValidation:
    def test_rejects_zero_dimensions(self):
        with pytest.raises(ConfigError):
            WeightTable(0, 3)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigError):
            WeightTable(2, 2).update(np.zeros((3, 2)), 0.2)

    def test_rejects_loss_out_of_range(self):
        with pytest.raises(ConfigError):
            WeightTable(1, 1).update(np.array([[1.5]]), 0.2)
        with pytest.raises(ConfigError):
            WeightTable(1, 1).update(np.array([[-0.5]]), 0.2)

    def test_rejects_bad_beta(self):
        with pytest.raises(ConfigError):
            WeightTable(1, 1).update(np.zeros((1, 1)), 0.0)
        with pytest.raises(ConfigError):
            WeightTable(1, 1).update(np.zeros((1, 1)), 1.0)

    def test_weights_view_read_only(self):
        table = WeightTable(2, 2)
        with pytest.raises(ValueError):
            table.weights[0, 0] = 5.0

    def test_reset(self):
        table = WeightTable(2, 2)
        table.update(np.full((2, 2), 0.5), 0.2)
        table.reset()
        assert np.allclose(table.weights, 1.0)
        assert table.updates == 0
