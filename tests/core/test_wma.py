"""Tests for Algorithm 1: the coordinated WMA frequency scaler."""

import numpy as np
import pytest

from repro.core.config import GreenGpuConfig
from repro.core.wma import WmaFrequencyScaler
from repro.sim.frequency import FrequencyLadder
from repro.units import mhz


@pytest.fixture
def scaler(gpu_spec):
    return WmaFrequencyScaler(gpu_spec.core_ladder, gpu_spec.mem_ladder)


class TestStationaryConvergence:
    def test_saturated_utilizations_drive_to_peak(self, scaler):
        for _ in range(20):
            decision = scaler.step(1.0, 1.0)
        assert decision.core_level == 0
        assert decision.mem_level == 0

    def test_idle_utilizations_drive_to_floor(self, scaler):
        for _ in range(20):
            decision = scaler.step(0.0, 0.0)
        assert decision.core_level == len(scaler.core_ladder) - 1
        assert decision.mem_level == len(scaler.mem_ladder) - 1

    def test_medium_core_low_mem_picks_interior_levels(self, scaler):
        """kmeans-like utilizations: neither domain at peak nor floor."""
        for _ in range(20):
            decision = scaler.step(0.6, 0.25)
        assert 0 < decision.core_level < len(scaler.core_ladder) - 1
        assert 0 < decision.mem_level < len(scaler.mem_ladder) - 1

    def test_converges_to_memoryless_optimum(self, scaler):
        """Under stationary utilizations the weighted history agrees with
        the single-shot minimum-loss pair."""
        u = (0.45, 0.70)
        expected = scaler.uniform_choice(*u)
        for _ in range(30):
            decision = scaler.step(*u)
        assert (decision.core_level, decision.mem_level) == expected

    def test_asymmetric_domains(self, scaler):
        for _ in range(20):
            decision = scaler.step(0.9, 0.1)
        assert decision.core_level <= 1
        assert decision.mem_level >= 3


class TestDynamics:
    def test_upshift_reacts_within_one_interval(self, scaler):
        """Utilization ramp after a short idle lead drives the clocks up
        at the next interval (paper Fig. 5a: 'the immediate next period
        after the utilization increase').  Fast upshift is by design: the
        performance-loss term carries weight (1 - alpha) = 0.85."""
        for _ in range(3):
            scaler.step(0.0, 0.0)   # idle lead-in (Fig. 5 starts this way)
        d = scaler.step(0.95, 0.9)
        assert d.core_level == 0
        assert d.mem_level <= 1

    def test_downshift_slower_but_eventual(self, scaler):
        """After a sustained high phase, a drop in utilization is absorbed
        gradually — the energy-loss term only carries alpha = 0.15, so the
        peak level's weight decays slowly.  This conservatism is the
        paper's stated trade-off ('our target is to save energy with only
        negligible performance degradation')."""
        for _ in range(3):
            scaler.step(0.95, 0.5)
        first = scaler.step(0.1, 0.5)
        assert first.core_level <= 1  # no immediate plunge
        for _ in range(40):
            d = scaler.step(0.1, 0.5)
        assert d.core_level >= 3      # but it does come down

    def test_single_outlier_does_not_flip_choice(self, scaler):
        """The weight history smooths one noisy sample."""
        for _ in range(20):
            stable = scaler.step(0.9, 0.9)
        noisy = scaler.step(0.05, 0.05)
        assert noisy.core_level <= stable.core_level + 1

    def test_decision_counter(self, scaler):
        scaler.step(0.5, 0.5)
        scaler.step(0.5, 0.5)
        assert scaler.decisions == 2

    def test_reset_forgets_history(self, scaler):
        for _ in range(20):
            scaler.step(0.0, 0.0)
        scaler.reset()
        assert scaler.decisions == 0
        decision = scaler.step(1.0, 1.0)
        assert decision.core_level == 0


class TestDecisionContents:
    def test_frequencies_match_levels(self, scaler):
        d = scaler.step(0.5, 0.5)
        assert d.f_core == scaler.core_ladder[d.core_level]
        assert d.f_mem == scaler.mem_ladder[d.mem_level]

    def test_loss_vectors_have_ladder_lengths(self, scaler):
        d = scaler.step(0.5, 0.5)
        assert d.core_loss.shape == (len(scaler.core_ladder),)
        assert d.mem_loss.shape == (len(scaler.mem_ladder),)

    def test_umeans_match_ladder_map(self, scaler):
        assert np.allclose(scaler.umean_core, np.linspace(1.0, 0.0, 6))
        assert np.allclose(scaler.umean_mem, np.linspace(1.0, 0.0, 6))


class TestConfigSensitivity:
    def test_performance_heavy_alpha_keeps_higher_levels(self, gpu_spec):
        """Smaller alpha (performance weighted) picks faster clocks than a
        larger alpha (energy weighted) at the same utilization."""
        perf = WmaFrequencyScaler(
            gpu_spec.core_ladder, gpu_spec.mem_ladder,
            GreenGpuConfig(alpha_core=0.02, alpha_mem=0.02),
        )
        energy = WmaFrequencyScaler(
            gpu_spec.core_ladder, gpu_spec.mem_ladder,
            GreenGpuConfig(alpha_core=0.6, alpha_mem=0.6),
        )
        for _ in range(20):
            d_perf = perf.step(0.5, 0.5)
            d_energy = energy.step(0.5, 0.5)
        assert d_perf.core_level <= d_energy.core_level
        assert d_perf.mem_level <= d_energy.mem_level

    def test_uneven_ladder_supported(self):
        core = FrequencyLadder([mhz(600), mhz(500), mhz(200)])
        mem = FrequencyLadder([mhz(900), mhz(400)])
        scaler = WmaFrequencyScaler(core, mem)
        d = scaler.step(1.0, 1.0)
        assert d.f_core == mhz(600)
        assert d.f_mem == mhz(900)
