"""Tests for the shared experiment plumbing."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import scaled_config, scaled_options, scaled_workload


class TestScaledConfig:
    def test_scales_both_periods_together(self):
        cfg = scaled_config(0.1)
        assert cfg.scaling_interval_s == pytest.approx(0.3)
        assert cfg.ondemand_interval_s == pytest.approx(0.01)
        # The decoupling ratio is scale-invariant.
        assert cfg.scaling_interval_s / cfg.ondemand_interval_s == pytest.approx(30.0)

    def test_unit_scale_is_paper_config(self):
        cfg = scaled_config(1.0)
        assert cfg.scaling_interval_s == 3.0
        assert cfg.alpha_core == 0.15

    def test_overrides_pass_through(self):
        cfg = scaled_config(1.0, beta=0.5)
        assert cfg.beta == 0.5

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigError):
            scaled_config(0.0)


class TestScaledOptions:
    def test_repartition_scales(self):
        assert scaled_options(0.1).repartition_overhead_s == pytest.approx(0.05)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigError):
            scaled_options(-1.0)


class TestScaledWorkload:
    def test_duration_scales(self):
        w = scaled_workload("kmeans", 0.1)
        assert w.profile.gpu_seconds_per_iteration == pytest.approx(13.0)

    def test_other_fields_preserved(self):
        w = scaled_workload("kmeans", 0.1)
        assert w.profile.cpu_gpu_time_ratio == 4.5
        assert w.profile.name == "kmeans"

    def test_extra_overrides(self):
        w = scaled_workload("kmeans", 0.1, default_iterations=3)
        assert w.default_iterations == 3

    def test_aliases_work(self):
        assert scaled_workload("SC", 0.1).name == "streamcluster"

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigError):
            scaled_workload("kmeans", 0.0)
