"""Shape tests for the Fig. 1 frequency sweeps."""

import pytest

from repro.errors import ConfigError
from repro.experiments import fig1

SCALE = 0.1


@pytest.fixture(scope="module")
def nbody_mem():
    return fig1.run("nbody", "mem", n_iterations=1, time_scale=SCALE)


@pytest.fixture(scope="module")
def nbody_core():
    return fig1.run("nbody", "core", n_iterations=1, time_scale=SCALE)


@pytest.fixture(scope="module")
def sc_mem():
    return fig1.run("streamcluster", "mem", n_iterations=1, time_scale=SCALE)


@pytest.fixture(scope="module")
def sc_core():
    return fig1.run("streamcluster", "core", n_iterations=1, time_scale=SCALE)


class TestStructure:
    def test_six_points_per_sweep(self, nbody_mem):
        assert len(nbody_mem) == 6

    def test_baseline_normalized_to_one(self, nbody_mem):
        assert nbody_mem[0].normalized_time == pytest.approx(1.0)
        assert nbody_mem[0].relative_energy == pytest.approx(1.0)

    def test_frequencies_descend(self, nbody_mem):
        freqs = [p.f_mhz for p in nbody_mem]
        assert freqs == sorted(freqs, reverse=True)

    def test_rejects_unknown_workload(self):
        with pytest.raises(ConfigError):
            fig1.run("kmeans", "mem")

    def test_rejects_unknown_domain(self):
        with pytest.raises(ConfigError):
            fig1.run("nbody", "cache")


class TestPaperShapes:
    def test_nbody_mem_throttle_nearly_free(self, nbody_mem):
        """Fig. 1a: core-bounded nbody barely slows when memory throttles."""
        assert nbody_mem[-1].normalized_time < 1.10

    def test_nbody_mem_throttle_saves_energy(self, nbody_mem):
        """Fig. 1b: an interior memory level minimizes nbody's energy."""
        energies = [p.relative_energy for p in nbody_mem]
        best = min(range(6), key=lambda i: energies[i])
        assert 0 < best
        assert energies[best] < 1.0

    def test_nbody_core_throttle_hurts_both(self, nbody_core):
        """Fig. 1c/1d: throttling the bottleneck degrades time and energy."""
        assert nbody_core[-1].normalized_time > 1.3
        assert nbody_core[-1].relative_energy > 1.1

    def test_sc_mem_throttle_hurts_both(self, sc_mem):
        """Memory-bounded streamcluster: Fig. 1a/1b other series."""
        assert sc_mem[-1].normalized_time > 1.15
        assert sc_mem[-1].relative_energy > 1.05

    def test_sc_core_knee_near_410(self, sc_core):
        """§III-A: SC's core can drop to ~410 MHz (level 3) with energy
        gain; beyond that both metrics degrade."""
        energies = [p.relative_energy for p in sc_core]
        best = min(range(6), key=lambda i: energies[i])
        assert best in (2, 3)
        assert energies[best] < 1.0
        assert energies[5] > energies[best]

    def test_run_all_covers_four_panels(self):
        panels = fig1.run_all(n_iterations=1, time_scale=0.05)
        assert set(panels) == {
            ("nbody", "mem"), ("nbody", "core"),
            ("streamcluster", "mem"), ("streamcluster", "core"),
        }
