"""Shape tests for the Fig. 2 division sweep."""

import numpy as np
import pytest

from repro.experiments import fig2


@pytest.fixture(scope="module")
def result():
    return fig2.run(
        ratios=[0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 0.9],
        n_iterations=2,
        time_scale=0.05,
    )


class TestPaperShapes:
    def test_interior_minimum_exists(self, result):
        """The headline claim of §III-B: cooperation beats GPU-only."""
        assert result.has_interior_minimum

    def test_minimum_near_paper_point(self, result):
        """Paper Fig. 2 minimum at ~10 % CPU; ours lands on 10-20 %."""
        assert 0.05 <= result.optimal_r <= 0.20

    def test_energy_rises_steeply_past_minimum(self, result):
        energies = result.normalized_energy
        assert energies[-1] > 1.5  # r = 0.9 is far worse than all-GPU

    def test_u_shape(self, result):
        """Down from r=0 to the minimum, then up to r=0.9."""
        energies = result.normalized_energy
        arg = int(np.argmin(energies))
        falling = energies[: arg + 1]
        rising = energies[arg:]
        assert np.all(np.diff(falling) <= 1e-9)
        assert np.all(np.diff(rising) >= -1e-9)

    def test_points_match_ratio_grid(self, result):
        assert [p.r for p in result.points][0] == 0.0
        assert len(result.points) == 9
