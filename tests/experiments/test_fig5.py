"""Shape tests for the Fig. 5 scaling trace."""

import numpy as np
import pytest

from repro.experiments import fig5
from repro.units import mhz


@pytest.fixture(scope="module")
def result():
    return fig5.run(n_iterations=3, time_scale=0.2)


class TestPaperShapes:
    def test_memory_converges_one_level_below_peak(self, result):
        """Fig. 5b's anchor: memory settles at 820 MHz."""
        assert result.converged_mem_mhz == pytest.approx(820.0)

    def test_core_converges_below_peak(self, result):
        """SC's core tolerates throttling (§III-A knee near 410 MHz)."""
        assert 410.0 <= result.converged_core_mhz < 576.0

    def test_clocks_start_low_then_ramp(self, result):
        """The run begins at the GPU's default lowest clocks."""
        trace = result.core_freq_trace
        assert trace.values[0] == pytest.approx(mhz(300.0))
        assert trace.values.max() > trace.values[0]

    def test_frequency_follows_utilization_ramp(self, result):
        """During the idle lead the scaler holds the floor; the clocks
        rise only after the workload's utilization appears."""
        f = result.mem_freq_trace
        lead_mask = f.times <= result.idle_lead_s
        assert np.all(f.values[lead_mask] == mhz(500.0))

    def test_average_power_below_best_performance(self, result):
        assert result.scaled.average_power_w < result.baseline.average_power_w

    def test_execution_time_similar(self, result):
        """Fig. 5c: 'the execution time is similar'.  Excluding the idle
        lead-in, the scaled run is within a few percent."""
        scaled_active = result.scaled.total_s - result.idle_lead_s
        assert scaled_active / result.baseline.total_s < 1.12

    def test_energy_efficiency_improved(self, result):
        scaled_rate = result.scaled.gpu_energy_j / result.scaled.total_s
        base_rate = result.baseline.gpu_energy_j / result.baseline.total_s
        assert scaled_rate < base_rate

    def test_traces_present(self, result):
        for name in ("gpu_u_core", "gpu_u_mem", "gpu_f_core", "gpu_f_mem",
                     "system_power_w"):
            assert name in result.scaled.traces
