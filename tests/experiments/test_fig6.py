"""Shape tests for the Fig. 6 frequency-scaling savings."""

import pytest

from repro.experiments import fig6


@pytest.fixture(scope="module")
def result():
    return fig6.run(n_iterations=3, time_scale=0.15)


@pytest.fixture(scope="module")
def by_name(result):
    return {r.name: r for r in result.rows}


class TestPaperShapes:
    def test_positive_average_gpu_saving(self, result):
        """Fig. 6a: positive average total-GPU saving."""
        assert 0.01 < result.average_gpu_saving < 0.15

    def test_dynamic_savings_amplify_total(self, result):
        """Fig. 6b vs 6a: dynamic savings are several times total ones."""
        assert result.average_dynamic_saving > 2.5 * result.average_gpu_saving

    def test_cpu_gpu_emulation_adds_savings(self, result):
        """Fig. 6c: throttling the CPU too saves more than GPU alone."""
        assert result.average_cpu_gpu_saving > result.average_gpu_saving

    def test_slowdown_negligible(self, result):
        """Paper: only 2.95 % longer execution on average."""
        assert result.average_slowdown < 0.06

    def test_low_utilization_workloads_save_most(self, by_name):
        """§VII-A: PF and lud (low/medium utilization) lead the pack."""
        leaders = sorted(by_name.values(), key=lambda r: -r.gpu_saving)[:3]
        leader_names = {r.name for r in leaders}
        assert "pathfinder" in leader_names
        assert "lud" in leader_names

    def test_saturated_workload_saves_least(self, by_name):
        """§VII-A: bfs's high utilizations leave nothing to throttle."""
        min_saving = min(r.gpu_saving for r in by_name.values())
        assert by_name["bfs"].gpu_saving == min_saving
        assert abs(by_name["bfs"].gpu_saving) < 0.03  # ~zero, not a loss

    def test_fluctuating_workloads_still_save(self, by_name):
        """§VII-A: phase tracking wins on QG and streamcluster."""
        assert by_name["quasirandom"].dynamic_saving > 0.0
        assert by_name["streamcluster"].dynamic_saving > 0.0

    def test_max_saving_substantial(self, result):
        """Paper: 'up to 14.53 %' — ours must reach near 10 %."""
        assert result.max_gpu_saving > 0.08

    def test_subset_run(self):
        subset = fig6.run(names=["lud"], n_iterations=1, time_scale=0.1)
        assert len(subset.rows) == 1
        assert subset.rows[0].name == "lud"
