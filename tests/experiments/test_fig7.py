"""Shape tests for the Fig. 7 division traces."""

import numpy as np
import pytest

from repro.experiments import fig7


@pytest.fixture(scope="module")
def results():
    return fig7.run(n_iterations=12, time_scale=0.05)


class TestKmeansTrace:
    def test_converges_to_20_80(self, results):
        """Paper §VII-B: 'our algorithm converges to 20/80'."""
        assert results["kmeans"].converged_r == pytest.approx(0.20)

    def test_static_optimum_is_15_85(self, results):
        """Paper §VII-B: 'the energy-minimum division is 15/85'."""
        assert results["kmeans"].static_optimal_r == pytest.approx(0.15)

    def test_converges_within_handful_of_iterations(self, results):
        assert results["kmeans"].convergence_iter <= 5

    def test_overhead_vs_optimal_modest(self, results):
        """Paper: 5.45 % longer than the optimal static division."""
        assert results["kmeans"].time_overhead_vs_optimal < 0.15

    def test_ratio_monotone_descent_from_30(self, results):
        ratios = results["kmeans"].ratios
        assert ratios[0] == pytest.approx(0.30)
        assert np.all(np.diff(ratios) <= 1e-12)


class TestHotspotTrace:
    def test_converges_exactly_to_50_50(self, results):
        """Paper §VII-B: hotspot converges exactly to the optimum."""
        assert results["hotspot"].converged_r == pytest.approx(0.50)

    def test_static_optimum_is_50_50(self, results):
        assert results["hotspot"].static_optimal_r == pytest.approx(0.50)

    def test_execution_times_converge(self, results):
        """Fig. 7's visual: |tc - tg| shrinks to near balance."""
        tc, tg = results["hotspot"].run.iteration_times()
        first_gap = abs(tc[0] - tg[0])
        last_gap = abs(tc[-1] - tg[-1])
        assert last_gap < first_gap

    def test_no_oscillation_after_convergence(self, results):
        ratios = results["hotspot"].ratios
        conv = results["hotspot"].convergence_iter
        assert len(set(np.round(ratios[conv:], 6))) == 1
