"""Shape tests for the Fig. 8 holistic comparison."""

import pytest

from repro.experiments import fig8


@pytest.fixture(scope="module")
def results():
    return fig8.run(n_iterations=10, time_scale=0.05)


class TestOrdering:
    def test_hotspot_ordering_holds(self, results):
        """GreenGPU <= Division-only <= Frequency-scaling-only."""
        assert results["hotspot"].ordering_holds

    def test_kmeans_ordering_holds(self, results):
        assert results["kmeans"].ordering_holds

    def test_greengpu_beats_division(self, results):
        """The frequency tier adds savings on top of division."""
        for res in results.values():
            assert res.saving_vs_division > 0.0

    def test_greengpu_beats_scaling_substantially(self, results):
        """The division tier is the larger contributor (paper §VII-C:
        'Division contribute more to energy saving than
        Frequency-scaling in holistic solution')."""
        for res in results.values():
            assert res.saving_vs_scaling > res.saving_vs_division

    def test_hotspot_gap_vs_scaling_large(self, results):
        """Paper: 28.76 % more saving than frequency-scaling-only."""
        assert results["hotspot"].saving_vs_scaling > 0.20

    def test_kmeans_gaps_in_paper_ballpark(self, results):
        """Paper: 1.6 % vs division, 12.05 % vs scaling."""
        res = results["kmeans"]
        assert 0.0 < res.saving_vs_division < 0.10
        assert 0.04 < res.saving_vs_scaling < 0.20


class TestTraces:
    def test_greengpu_division_ratio_converges(self, results):
        ratios = results["hotspot"].greengpu.ratios()
        assert ratios[-1] == pytest.approx(0.50)

    def test_per_iteration_energies_available(self, results):
        res = results["kmeans"]
        assert len(res.greengpu.iteration_energies()) == 10
        assert len(res.division_only.iteration_energies()) == 10
        assert len(res.scaling_only.iteration_energies()) == 10

    def test_steady_state_energy_ordering_per_iteration(self, results):
        """Once converged, each GreenGPU iteration costs least (Fig. 8's
        per-iteration view)."""
        res = results["hotspot"]
        g = res.greengpu.iteration_energies()[-3:].mean()
        d = res.division_only.iteration_energies()[-3:].mean()
        s = res.scaling_only.iteration_energies()[-3:].mean()
        assert g < d < s
