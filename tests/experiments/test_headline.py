"""Tests for the headline 21.04 % reproduction."""

import pytest

from repro.experiments import headline


@pytest.fixture(scope="module")
def result():
    return headline.run(n_iterations=10, time_scale=0.05)


class TestHeadline:
    def test_average_saving_near_paper(self, result):
        """Paper: 21.04 % average saving over kmeans + hotspot vs the
        Rodinia default.  The simulator must land in the same band."""
        assert 0.15 < result.average_saving < 0.30

    def test_both_workloads_save(self, result):
        for row in result.rows:
            assert row.saving_vs_default > 0.05

    def test_hotspot_saves_more_than_kmeans(self, result):
        """Hotspot's 50/50 division dwarfs kmeans' 20/80 rebalance."""
        by_name = {r.name: r for r in result.rows}
        assert by_name["hotspot"].saving_vs_default > by_name["kmeans"].saving_vs_default

    def test_slowdown_vs_division_only_small(self, result):
        """Paper: GreenGPU is only 1.7 % slower than division-only."""
        assert abs(result.average_slowdown_vs_division) < 0.05
