"""Tests for the utilization-plane sensitivity map."""

import pytest

from repro.errors import ConfigError
from repro.experiments import sensitivity


@pytest.fixture(scope="module")
def small_map():
    return sensitivity.run(
        grid=[0.2, 0.5, 0.85], time_scale=0.05, n_iterations=1, iteration_seconds=20.0
    )


class TestGrid:
    def test_infeasible_corner_skipped(self, small_map):
        """(0.85, 0.85) violates the k=4 feasibility bound and is absent."""
        pairs = {(p.u_core, p.u_mem) for p in small_map.points}
        assert (0.85, 0.85) not in pairs
        assert (0.2, 0.2) in pairs

    def test_all_points_have_metrics(self, small_map):
        for p in small_map.points:
            assert -0.05 < p.gpu_saving < 0.5
            assert -0.01 < p.slowdown < 0.2

    def test_nearest_lookup(self, small_map):
        p = small_map.at(0.21, 0.19)
        assert (p.u_core, p.u_mem) == (0.2, 0.2)

    def test_empty_lookup_raises(self):
        with pytest.raises(ConfigError):
            sensitivity.SensitivityMap(points=[]).at(0.5, 0.5)


class TestPaperSurface:
    def test_savings_fall_as_utilization_rises(self, small_map):
        """§VII-A's observation as a surface property: the low-low corner
        saves more than any saturated point."""
        low = small_map.at(0.2, 0.2)
        for p in small_map.points:
            if p.u_core >= 0.85 or p.u_mem >= 0.85:
                assert low.gpu_saving > p.gpu_saving

    def test_best_is_low_utilization(self, small_map):
        assert small_map.best.u_core <= 0.5
        assert small_map.best.u_mem <= 0.5

    def test_worst_is_high_utilization(self, small_map):
        assert max(small_map.worst.u_core, small_map.worst.u_mem) >= 0.5
