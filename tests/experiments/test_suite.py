"""Tests for the one-shot evaluation suite."""

import pytest

from repro.experiments import suite


@pytest.fixture(scope="module")
def summary():
    return suite.run(time_scale=0.08)


class TestSuite:
    def test_all_table2_classes_match(self, summary):
        assert summary.table2_matches == summary.table2_total == 9

    def test_paper_anchors(self, summary):
        assert summary.fig5_converged_mem_mhz == pytest.approx(820.0)
        assert summary.fig7_kmeans_converged_r == pytest.approx(0.20)
        assert summary.fig7_hotspot_converged_r == pytest.approx(0.50)
        assert summary.fig8_ordering_holds

    def test_headline_in_band(self, summary):
        assert 0.15 < summary.headline_average_saving < 0.30

    def test_fig1_minima_exist(self, summary):
        assert summary.fig1_nbody_mem_best_energy < 1.0
        assert summary.fig1_sc_core_best_energy < 1.0

    def test_markdown_renders(self, summary):
        md = summary.to_markdown()
        assert md.startswith("# Evaluation suite summary")
        assert "| Fig. 5" in md
        assert "820 MHz" in md

    def test_elapsed_recorded(self, summary):
        assert summary.elapsed_s > 0.0
