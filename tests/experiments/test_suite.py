"""Tests for the one-shot evaluation suite."""

import pytest

from repro.experiments import suite


@pytest.fixture(scope="module")
def summary():
    return suite.run(time_scale=0.08)


class TestSuite:
    def test_all_table2_classes_match(self, summary):
        assert summary.table2_matches == summary.table2_total == 9

    def test_paper_anchors(self, summary):
        assert summary.fig5_converged_mem_mhz == pytest.approx(820.0)
        assert summary.fig7_kmeans_converged_r == pytest.approx(0.20)
        assert summary.fig7_hotspot_converged_r == pytest.approx(0.50)
        assert summary.fig8_ordering_holds

    def test_headline_in_band(self, summary):
        assert 0.15 < summary.headline_average_saving < 0.30

    def test_fig1_minima_exist(self, summary):
        assert summary.fig1_nbody_mem_best_energy < 1.0
        assert summary.fig1_sc_core_best_energy < 1.0

    def test_markdown_renders(self, summary):
        md = summary.to_markdown()
        assert md.startswith("# Evaluation suite summary")
        assert "| Fig. 5" in md
        assert "820 MHz" in md

    def test_elapsed_recorded(self, summary):
        assert summary.elapsed_s > 0.0


class TestFromPayloads:
    def test_fields_merge_in_canonical_order(self):
        summary = suite.SuiteSummary.from_payloads({
            "table2": {"table2_matches": 8, "table2_total": 9,
                       "notes": ["table2 mismatch: srad"]},
            "fig2": {"fig2_optimal_r": 0.15},
        })
        assert summary.fig2_optimal_r == 0.15
        assert summary.table2_matches == 8
        assert summary.notes == ["table2 mismatch: srad"]
        # Untouched artifacts keep their zero defaults.
        assert summary.headline_average_saving == 0.0

    def test_merge_ignores_completion_order(self):
        payloads = {"fig2": {"fig2_optimal_r": 0.15},
                    "fig8": {"fig8_ordering_holds": True}}
        forward = suite.SuiteSummary.from_payloads(dict(payloads))
        backward = suite.SuiteSummary.from_payloads(
            dict(reversed(list(payloads.items()))))
        assert forward == backward

    def test_markdown_without_elapsed_is_deterministic(self):
        summary = suite.SuiteSummary.from_payloads(
            {"fig2": {"fig2_optimal_r": 0.15}})
        summary.elapsed_s = 12.34
        md = summary.to_markdown(include_elapsed=False)
        assert "wall time" not in md
        assert "12.3" not in md
        assert "| Fig. 2" in md


class TestRunSupervised:
    def test_inline_supervised_matches_direct_run(self, tmp_path):
        run_dir = tmp_path / "run"
        summary, result = suite.run_supervised(
            time_scale=0.05, run_dir=str(run_dir), only=("fig2", "table2"),
            isolate=False,
        )
        assert result.report.succeeded == 2
        assert summary.fig2_optimal_r == pytest.approx(0.15)
        assert summary.table2_matches == summary.table2_total == 9
        assert (run_dir / "summary.md").exists()
        assert (run_dir / "health.md").exists()
        assert (run_dir / "journal.jsonl").exists()

    def test_resume_reuses_artifacts_and_ledger_is_stable(self, tmp_path):
        run_dir = tmp_path / "run"
        suite.run_supervised(time_scale=0.05, run_dir=str(run_dir),
                             only=("fig2",), isolate=False)
        first = (run_dir / "summary.md").read_bytes()
        _, result = suite.run_supervised(time_scale=0.05, run_dir=str(run_dir),
                                         only=("fig2",), isolate=False,
                                         resume=True)
        assert result.report.resumed == 1
        assert result.report.succeeded == 0
        assert (run_dir / "summary.md").read_bytes() == first

    def test_resume_needs_run_dir(self):
        with pytest.raises(ValueError):
            suite.run_supervised(resume=True)
