"""Tests that the measured Table II characterization matches the paper."""

import pytest

from repro.errors import ConfigError
from repro.experiments import table2


@pytest.fixture(scope="module")
def rows():
    return {r.name: r for r in table2.run(n_iterations=1, time_scale=0.1)}


class TestClassify:
    def test_bands(self):
        assert table2.classify(0.9) == "high"
        assert table2.classify(0.7) == "high"
        assert table2.classify(0.5) == "medium"
        assert table2.classify(0.1) == "low"

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            table2.classify(1.5)


class TestMeasuredCharacterization:
    def test_all_nine_workloads_measured(self, rows):
        assert len(rows) == 9

    def test_bfs_high_high(self, rows):
        assert table2.classify(rows["bfs"].u_core) == "high"
        assert table2.classify(rows["bfs"].u_mem) == "high"

    def test_lud_medium_low(self, rows):
        assert table2.classify(rows["lud"].u_core) == "medium"
        assert table2.classify(rows["lud"].u_mem) == "low"

    def test_nbody_core_dominant(self, rows):
        assert table2.classify(rows["nbody"].u_core) == "high"
        assert rows["nbody"].u_core > rows["nbody"].u_mem

    def test_pathfinder_low_low(self, rows):
        assert table2.classify(rows["pathfinder"].u_core) == "low"
        assert table2.classify(rows["pathfinder"].u_mem) == "low"

    def test_srad_high_medium(self, rows):
        assert table2.classify(rows["srad_v2"].u_core) == "high"
        assert table2.classify(rows["srad_v2"].u_mem) == "medium"

    def test_hotspot_medium_low(self, rows):
        assert table2.classify(rows["hotspot"].u_core) == "medium"
        assert table2.classify(rows["hotspot"].u_mem) == "low"

    def test_kmeans_medium_low(self, rows):
        assert table2.classify(rows["kmeans"].u_core) == "medium"
        assert table2.classify(rows["kmeans"].u_mem) == "low"

    def test_fluctuating_workloads_flagged(self, rows):
        assert rows["quasirandom"].fluctuating
        assert rows["streamcluster"].fluctuating
        assert "fluctuate" in rows["streamcluster"].measured_description

    def test_enlargement_carried_from_paper(self, rows):
        assert rows["kmeans"].enlargement == "988040 data points"
