"""Tests for measured (non-emulated) async CPU+GPU scaling."""

import pytest

from repro.extensions.async_comm import measured_async_savings


@pytest.fixture(scope="module")
def result():
    return measured_async_savings("kmeans", time_scale=0.1, n_iterations=3)


class TestMeasuredAsync:
    def test_ondemand_reaches_floor_pstate(self, result):
        """Without busy-waiting, the governor actually throttles — the
        behaviour the paper could only assume (§VII-A)."""
        assert result.cpu_floor_reached

    def test_measured_saving_positive(self, result):
        assert result.measured_saving > 0.05

    def test_measured_in_band_of_emulation(self, result):
        """The paper's emulation was 'conservative'; the measured saving
        should be in the same band (within a few points either way —
        ondemand takes sampling intervals to walk down, the emulation
        assumes instant repricing)."""
        assert result.measured_saving == pytest.approx(
            result.emulated_saving, abs=0.06
        )

    def test_emulated_saving_positive(self, result):
        assert result.emulated_saving > 0.05
