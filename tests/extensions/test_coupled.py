"""Tests for the coupled-tier alternative (§IV's rejected design)."""

import pytest

from repro.core.config import GreenGpuConfig
from repro.errors import ConfigError
from repro.extensions.coupled import CoupledController, compare_coupling
from tests.conftest import FAST_SCALE, fast_workload


@pytest.fixture(scope="module")
def comparison():
    config = GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE,
        ondemand_interval_s=0.1 * FAST_SCALE,
    )
    return compare_coupling(
        fast_workload("kmeans"),
        config,
        n_iterations=4,
        subdivisions=8,
        repartition_overhead_s=0.5 * FAST_SCALE,
    )


class TestCoupledController:
    def test_micro_workload_divides_divisible_work_only(self):
        shim = CoupledController(subdivisions=10)
        base = fast_workload("kmeans")
        micro = shim.micro_workload(base)
        base_serial = (
            base.profile.serial_fraction * base.profile.gpu_seconds_per_iteration
        )
        micro_serial = (
            micro.profile.serial_fraction * micro.profile.gpu_seconds_per_iteration
        )
        # The barrier/reduction cost is per invocation: unchanged.
        assert micro_serial == pytest.approx(base_serial)
        # The divisible work splits ten ways.
        base_divisible = base.profile.gpu_seconds_per_iteration - base_serial
        micro_divisible = micro.profile.gpu_seconds_per_iteration - micro_serial
        assert micro_divisible == pytest.approx(base_divisible / 10)

    def test_rejects_zero_subdivisions(self):
        with pytest.raises(ConfigError):
            CoupledController(subdivisions=0)


class TestDecouplingArgument:
    def test_same_total_work_executed(self, comparison):
        """4 full iterations == 32 micro-iterations of 1/8 the work."""
        assert comparison.coupled.n_iterations == 32
        assert comparison.decoupled.n_iterations == 4

    def test_decoupled_design_wins_on_energy(self, comparison):
        """The paper's §IV claim: coupling pays repartitioning and
        serial-tax overheads every micro-iteration and loses."""
        assert comparison.decoupled_advantage > 0.0

    def test_coupled_also_slower(self, comparison):
        assert comparison.coupled.total_s > comparison.decoupled.total_s
