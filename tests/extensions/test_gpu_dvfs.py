"""Tests for the hypothetical DVFS-capable GPU."""

import pytest

from repro.errors import ConfigError
from repro.extensions.gpu_dvfs import (
    DvfsGpuPowerModel,
    dvfs_gpu_spec,
    dvfs_savings_comparison,
)
from repro.sim.calibration import geforce_8800_gtx_spec


@pytest.fixture
def dvfs_model():
    base = geforce_8800_gtx_spec().power
    return DvfsGpuPowerModel(
        static_w=base.static_w,
        clock_core_w=base.clock_core_w,
        clock_mem_w=base.clock_mem_w,
        active_core_w=base.active_core_w,
        active_mem_w=base.active_mem_w,
        v_floor_ratio=0.80,
    )


class TestPowerModel:
    def test_peak_power_unchanged(self, dvfs_model):
        """At peak clocks V = V_peak, so DVFS changes nothing."""
        base = geforce_8800_gtx_spec().power
        assert dvfs_model.peak_power == pytest.approx(base.peak_power)

    def test_throttled_power_below_frequency_only(self, dvfs_model):
        """At any throttled point the V^2 factor cuts dynamic power
        further than frequency alone — the §VII-C expectation."""
        base = geforce_8800_gtx_spec().power
        for f in (0.52, 0.7, 0.9):
            assert dvfs_model.power(f, f, 0.5, 0.5) < base.power(f, f, 0.5, 0.5)

    def test_static_floor_voltage_insensitive(self, dvfs_model):
        floor = dvfs_model.power(0.52, 0.56, 0.0, 0.0)
        assert floor > dvfs_model.static_w

    def test_per_domain_rails(self, dvfs_model):
        """Throttling one domain must not discount the other's power."""
        both = dvfs_model.power(0.52, 1.0, 0.5, 0.5)
        base = geforce_8800_gtx_spec().power
        # Memory terms identical to the frequency-only model at f_mem = 1.
        mem_terms_dvfs = both - dvfs_model.static_w - (
            (dvfs_model.clock_core_w + dvfs_model.active_core_w * 0.5)
            * 0.52 * dvfs_model._v_sq(0.52)
        )
        mem_terms_base = (base.clock_mem_w + base.active_mem_w * 0.5) * 1.0
        assert mem_terms_dvfs == pytest.approx(mem_terms_base)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DvfsGpuPowerModel(60, 25, 28, 22, 12, v_floor_ratio=0.0)


class TestSpecAndComparison:
    def test_spec_marks_dvfs(self):
        assert "DVFS" in dvfs_gpu_spec().name

    def test_dvfs_saves_more(self):
        """The headline claim: tier-2 savings grow when the GPU can scale
        voltage, with the controller completely unchanged."""
        comparison = dvfs_savings_comparison(
            "pathfinder", time_scale=0.1, n_iterations=2
        )
        assert comparison.saving_dvfs > comparison.saving_frequency_only
        assert comparison.dvfs_advantage > 0.02

    def test_dvfs_advantage_smaller_on_saturated_workload(self):
        """bfs stays at peak clocks, so voltage scaling has nothing to
        act on — its advantage must be near zero."""
        comparison = dvfs_savings_comparison("bfs", time_scale=0.1, n_iterations=2)
        assert abs(comparison.dvfs_advantage) < 0.02
