"""Tests for the §VI 8-bit fixed-point hardware weight table."""

import numpy as np
import pytest

from repro.core.config import GreenGpuConfig
from repro.core.wma import WmaFrequencyScaler
from repro.errors import ConfigError
from repro.extensions.hardware_table import QuantizedWeightTable, QuantizedWmaScaler


class TestQuantizedTable:
    def test_paper_storage_figure(self):
        """§VI: 'we only need a 36 bytes table (6x6x8)'."""
        assert QuantizedWeightTable(6, 6, bits=8).storage_bytes == 36

    def test_initial_weights_full_scale(self):
        table = QuantizedWeightTable(2, 2)
        assert np.all(table.weights == 255)

    def test_update_rounds_to_nearest(self):
        table = QuantizedWeightTable(1, 1)
        table.update(np.array([[0.5]]), beta=0.2)
        # factor = 0.6 -> quantized 153/255; 255*153/255 = 153.
        assert table.weights[0, 0] == 153

    def test_tiny_losses_may_quantize_to_zero(self):
        """The 8-bit blur: losses below half a quantum are invisible."""
        table = QuantizedWeightTable(1, 1)
        table.update(np.array([[0.001]]), beta=0.2)  # factor 0.9992 -> 255/255
        assert table.weights[0, 0] == 255

    def test_renormalization_shift_preserves_argmax(self):
        table = QuantizedWeightTable(2, 2)
        loss = np.array([[0.9, 0.3], [0.9, 0.9]])
        for _ in range(50):
            table.update(loss, beta=0.2)
        assert table.best_pair() == (0, 1)
        assert table.renormalizations > 0
        assert table.weights.max() > 0

    def test_total_collapse_resets_to_uniform(self):
        table = QuantizedWeightTable(2, 2, bits=2)
        for _ in range(20):
            table.update(np.ones((2, 2)), beta=0.2)
        assert np.all(table.weights > 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            QuantizedWeightTable(0, 2)
        with pytest.raises(ConfigError):
            QuantizedWeightTable(2, 2, bits=1)
        with pytest.raises(ConfigError):
            QuantizedWeightTable(2, 2).update(np.zeros((3, 3)), 0.2)
        with pytest.raises(ConfigError):
            QuantizedWeightTable(2, 2).update(np.zeros((2, 2)), 1.0)

    def test_reset(self):
        table = QuantizedWeightTable(2, 2)
        table.update(np.full((2, 2), 0.5), 0.2)
        table.reset()
        assert np.all(table.weights == 255)


class TestQuantizedScaler:
    @pytest.fixture
    def pair(self, gpu_spec):
        cfg = GreenGpuConfig()
        return (
            QuantizedWmaScaler(gpu_spec.core_ladder, gpu_spec.mem_ladder, cfg),
            WmaFrequencyScaler(gpu_spec.core_ladder, gpu_spec.mem_ladder, cfg),
        )

    def test_exact_agreement_at_extremes(self, pair):
        quantized, floating = pair
        for u in ((1.0, 1.0), (0.0, 0.0)):
            quantized.table.reset(), floating.reset()
            for _ in range(10):
                dq = quantized.step(*u)
                df = floating.step(*u)
            assert (dq.core_level, dq.mem_level) == (df.core_level, df.mem_level)

    def test_steady_state_near_float_choice(self, pair):
        """The paper's 8-bit-is-enough claim, with the honest caveat: the
        per-update factor 1 - 0.8*loss collapses loss gaps below ~1.25
        quanta, so levels whose losses are that close become
        indistinguishable.  With alpha_core = 0.15 the core losses are
        well separated (agreement within one level); with alpha_mem = 0.02
        the memory losses are tiny and the blur reaches two levels."""
        quantized, floating = pair
        for u in ((0.6, 0.25), (0.3, 0.7), (0.45, 0.45), (0.85, 0.15)):
            quantized.table.reset(), floating.reset()
            for _ in range(20):
                dq = quantized.step(*u)
                df = floating.step(*u)
            assert abs(dq.core_level - df.core_level) <= 1, u
            assert abs(dq.mem_level - df.mem_level) <= 2, u
            # The blur is always toward *higher* frequency (ties resolve
            # fast), so it trades energy for performance, never the
            # other way — consistent with the paper's priorities.
            assert dq.mem_level <= df.mem_level, u

    def test_tracks_phase_changes(self, pair):
        quantized, _ = pair
        for _ in range(10):
            low = quantized.step(0.1, 0.1)
        for _ in range(10):
            high = quantized.step(0.95, 0.95)
        assert high.core_level < low.core_level
        assert high.mem_level < low.mem_level

    def test_more_bits_converge_to_float_behaviour(self, gpu_spec):
        """At 16 bits the quantization error is far below any loss gap the
        6-level ladders produce, so decisions match the float controller."""
        cfg = GreenGpuConfig()
        hi = QuantizedWmaScaler(gpu_spec.core_ladder, gpu_spec.mem_ladder, cfg, bits=16)
        ref = WmaFrequencyScaler(gpu_spec.core_ladder, gpu_spec.mem_ladder, cfg)
        for u in ((0.6, 0.25), (0.3, 0.7)):
            for _ in range(15):
                dq = hi.step(*u)
                df = ref.step(*u)
            assert (dq.core_level, dq.mem_level) == (df.core_level, df.mem_level)


class TestHardwareCatalog:
    def test_every_shipped_entry_validates(self):
        from repro.extensions.hardware_table import (
            HARDWARE_TABLE,
            validate,
            validate_all,
        )

        for entry in HARDWARE_TABLE.values():
            assert validate(entry) == [], entry.key
        validate_all()  # must not raise

    def test_wall_power_bounds_ordered(self):
        from repro.extensions.hardware_table import (
            HARDWARE_TABLE,
            floor_wall_power_w,
            peak_wall_power_w,
        )

        for entry in HARDWARE_TABLE.values():
            config = entry.make_config()
            assert 0.0 < floor_wall_power_w(config) < peak_wall_power_w(config)

    def test_entry_lookup(self):
        from repro.extensions.hardware_table import hardware_entry, hardware_keys

        assert "paper-8800gtx" in hardware_keys()
        assert hardware_entry("paper-8800gtx").key == "paper-8800gtx"
        with pytest.raises(ConfigError, match="unknown hardware entry"):
            hardware_entry("abacus")

    def test_broken_entry_detected(self):
        """A kW/W unit mixup surfaces, and validate_all names the entry."""
        from dataclasses import replace

        from repro.extensions.hardware_table import (
            HardwareEntry,
            hardware_entry,
            validate,
            validate_all,
        )

        base = hardware_entry("paper-8800gtx")

        def hot_psu():
            config = base.factory()
            return replace(config, meter1_overhead_w=5000.0)

        problems = validate(HardwareEntry("hot", "kW mixup", hot_psu))
        assert any("sanity band" in p for p in problems)

        def negative_overhead():
            config = base.factory()
            return replace(config, meter2_overhead_w=-1.0)

        problems = validate(HardwareEntry("neg", "negative overhead",
                                          negative_overhead))
        assert any("negative" in p for p in problems)

        with pytest.raises(ConfigError, match="validation failed"):
            validate_all({"hot": HardwareEntry("hot", "kW mixup", hot_psu)})

    def test_crashing_factory_is_a_finding(self):
        from repro.extensions.hardware_table import HardwareEntry, validate

        def boom():
            raise RuntimeError("no such card")

        problems = validate(HardwareEntry("boom", "broken", boom))
        assert problems and "factory failed" in problems[0]
