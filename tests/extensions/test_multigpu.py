"""Tests for the N-way workload divider."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.extensions.multigpu import DeviceTiming, MultiwayDivider


class TestConstruction:
    def test_defaults_to_uniform_shares(self):
        d = MultiwayDivider(["cpu", "gpu0", "gpu1"])
        assert np.allclose(d.shares, 1.0 / 3.0)

    def test_explicit_initial_shares(self):
        d = MultiwayDivider(["a", "b"], initial_shares=[0.3, 0.7])
        assert np.allclose(d.shares, [0.3, 0.7])

    def test_rejects_single_device(self):
        with pytest.raises(PartitionError):
            MultiwayDivider(["solo"])

    def test_rejects_bad_shares(self):
        with pytest.raises(PartitionError):
            MultiwayDivider(["a", "b"], initial_shares=[0.3, 0.3])
        with pytest.raises(PartitionError):
            MultiwayDivider(["a", "b"], initial_shares=[-0.1, 1.1])
        with pytest.raises(PartitionError):
            MultiwayDivider(["a", "b"], initial_shares=[1.0])

    def test_rejects_bad_step(self):
        with pytest.raises(PartitionError):
            MultiwayDivider(["a", "b"], step=0.0)


class TestUpdateRule:
    def test_moves_from_slowest_to_fastest(self):
        d = MultiwayDivider(["a", "b", "c"], step=0.1)
        decision = d.update([
            DeviceTiming("a", 3.0), DeviceTiming("b", 1.0), DeviceTiming("c", 2.0),
        ])
        assert decision.donor == 0 and decision.receiver == 1
        assert np.allclose(d.shares, [1/3 - 0.1, 1/3 + 0.1, 1/3])

    def test_equal_times_hold(self):
        d = MultiwayDivider(["a", "b"])
        decision = d.update([DeviceTiming("a", 2.0), DeviceTiming("b", 2.0)])
        assert decision.donor is None and not decision.held_by_safeguard

    def test_shares_always_sum_to_one(self):
        d = MultiwayDivider(["a", "b", "c"], step=0.07)
        rng = np.random.default_rng(0)
        for _ in range(50):
            times = [DeviceTiming(n, float(rng.uniform(0.1, 5.0))) for n in d.names]
            d.update(times)
            assert d.shares.sum() == pytest.approx(1.0)
            assert np.all(d.shares >= -1e-12)

    def test_rejects_wrong_timing_count(self):
        d = MultiwayDivider(["a", "b"])
        with pytest.raises(PartitionError):
            d.update([DeviceTiming("a", 1.0)])

    def test_rejects_unknown_device_name(self):
        d = MultiwayDivider(["a", "b"])
        with pytest.raises(PartitionError):
            d.update([DeviceTiming("a", 1.0), DeviceTiming("z", 1.0)])

    def test_rejects_negative_time(self):
        with pytest.raises(PartitionError):
            DeviceTiming("a", -1.0)


class TestClosedLoopConvergence:
    def test_two_device_case_reduces_to_paper_algorithm(self):
        """With two devices the multiway rule converges to the same
        grid point as the pairwise divider."""
        d = MultiwayDivider(["cpu", "gpu"], initial_shares=[0.30, 0.70])
        shares = d.drive([4.5, 1.0], iterations=20)
        assert shares[0] == pytest.approx(0.20)  # kmeans-like parking

    def test_three_devices_approach_balance(self):
        d = MultiwayDivider(["cpu", "gpu0", "gpu1"])
        unit_times = [5.0, 1.0, 1.5]
        d.drive(unit_times, iterations=40)
        # Perfect balance gives imbalance 1.0; step quantization plus the
        # safeguard can park within one step of it.
        assert d.imbalance(unit_times) < 1.5

    def test_parked_state_is_stable(self):
        d = MultiwayDivider(["cpu", "gpu0", "gpu1"])
        unit_times = [5.0, 1.0, 1.5]
        settled = d.drive(unit_times, iterations=40)
        again = d.drive(unit_times, iterations=10)
        assert np.allclose(settled, again)

    def test_smaller_step_balances_tighter(self):
        unit_times = [5.0, 1.0, 1.5]
        coarse = MultiwayDivider(["a", "b", "c"], step=0.10)
        fine = MultiwayDivider(["a", "b", "c"], step=0.01)
        coarse.drive(unit_times, iterations=60)
        fine.drive(unit_times, iterations=200)
        assert fine.imbalance(unit_times) <= coarse.imbalance(unit_times)
        assert fine.imbalance(unit_times) < 1.12

    def test_four_devices(self):
        d = MultiwayDivider(["cpu", "g0", "g1", "g2"], step=0.02)
        unit_times = [6.0, 1.0, 1.2, 0.8]
        d.drive(unit_times, iterations=150)
        # The slow CPU's balanced share (~0.05) is only 2.5 steps wide, so
        # step quantization can park it up to ~step/share away from
        # perfect balance.
        assert d.imbalance(unit_times) < 1.5

    def test_dead_slow_device_starved(self):
        """A device 100x slower ends up with (almost) no work."""
        d = MultiwayDivider(["turtle", "gpu"], step=0.05)
        shares = d.drive([100.0, 1.0], iterations=40)
        assert shares[0] <= 0.05 + 1e-9

    def test_imbalance_requires_work(self):
        d = MultiwayDivider(["a", "b"], initial_shares=[1.0, 0.0])
        with pytest.raises(PartitionError):
            d.imbalance([0.0, 0.0])
