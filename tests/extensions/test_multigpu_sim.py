"""Tests for the full multi-GPU co-simulation."""

import dataclasses

import pytest

from repro.core.config import GreenGpuConfig
from repro.errors import ConfigError, SimulationError
from repro.extensions.multigpu_sim import (
    MultiGreenGpuController,
    MultiHeteroSystem,
    run_multi_workload,
)
from repro.sim.calibration import geforce_8800_gtx_spec
from tests.conftest import FAST_SCALE, fast_workload


@pytest.fixture
def fast_cfg():
    return GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE,
        ondemand_interval_s=0.1 * FAST_SCALE,
    )


def _run(n_gpus, workload_name="kmeans", n_iterations=8, cfg=None, gpu_specs=None):
    if gpu_specs is None:
        gpu_specs = [geforce_8800_gtx_spec() for _ in range(n_gpus)]
    system = MultiHeteroSystem(gpu_specs=gpu_specs)
    cfg = cfg or GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE, ondemand_interval_s=0.1 * FAST_SCALE
    )
    return run_multi_workload(
        fast_workload(workload_name),
        system=system,
        controller=MultiGreenGpuController(system, cfg),
        n_iterations=n_iterations,
    )


class TestPlatform:
    def test_requires_one_gpu(self):
        with pytest.raises(ConfigError):
            MultiHeteroSystem(gpu_specs=[])

    def test_default_is_dual_gpu(self):
        assert len(MultiHeteroSystem().gpus) == 2

    def test_one_meter_per_card(self):
        system = MultiHeteroSystem(
            gpu_specs=[geforce_8800_gtx_spec()] * 3
        )
        assert len(system.meter_gpus) == 3

    def test_energy_sums_all_meters(self):
        system = MultiHeteroSystem()
        system.step(horizon=2.0)
        expected = system.meter_cpu.energy_j + sum(
            m.energy_j for m in system.meter_gpus
        )
        assert system.total_energy_j == pytest.approx(expected)


class TestDualGpuRun:
    @pytest.fixture(scope="class")
    def result(self):
        return _run(n_gpus=2, n_iterations=10)

    def test_identical_cards_share_equally(self, result):
        """Two identical GPUs must end with (near) equal shares."""
        _, g0, g1 = result.final_shares
        assert g0 == pytest.approx(g1, abs=0.051)

    def test_cpu_share_shrinks_from_uniform(self, result):
        """The slow CPU gives up work to the cards."""
        assert result.final_shares[0] < 0.30

    def test_shares_sum_to_one(self, result):
        assert sum(result.final_shares) == pytest.approx(1.0)

    def test_iteration_times_decrease_with_balance(self, result):
        assert result.iteration_times[-1] < result.iteration_times[0]

    def test_two_gpus_faster_than_one(self):
        one = _run(n_gpus=1, n_iterations=8)
        two = _run(n_gpus=2, n_iterations=8)
        assert two.total_s < one.total_s

    def test_result_metadata(self, result):
        assert result.workload == "kmeans"
        assert result.n_gpus == 2


class TestHeterogeneousCards:
    def test_slower_card_gets_less_work(self):
        fast_card = geforce_8800_gtx_spec()
        slow_card = dataclasses.replace(
            fast_card,
            name="half-speed card",
            peak_compute_rate=fast_card.peak_compute_rate / 2.0,
            peak_bandwidth=fast_card.peak_bandwidth / 2.0,
        )
        result = _run(
            n_gpus=2, n_iterations=14, gpu_specs=[fast_card, slow_card]
        )
        _, g_fast, g_slow = result.final_shares
        assert g_fast > g_slow


class TestControllerIntegration:
    def test_per_card_scalers_independent(self, fast_cfg):
        system = MultiHeteroSystem()
        controller = MultiGreenGpuController(system, fast_cfg)
        assert len(controller.scalers) == 2
        assert controller.scalers[0] is not controller.scalers[1]
        controller.detach()

    def test_scaling_throttles_idle_cards(self, fast_cfg):
        system = MultiHeteroSystem()
        for gpu in system.gpus:
            gpu.set_peak()
        controller = MultiGreenGpuController(system, fast_cfg)
        # No work: run the clock alone for several scaling intervals.
        end = system.now + 10 * fast_cfg.scaling_interval_s
        while system.now < end:
            system.step(horizon=end - system.now)
        for gpu in system.gpus:
            assert gpu.f_core == gpu.spec.core_ladder.floor
        controller.detach()

    def test_run_validates_iterations(self):
        with pytest.raises(SimulationError):
            run_multi_workload(fast_workload("kmeans"), n_iterations=0)
