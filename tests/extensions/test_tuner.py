"""Tests for the WMA parameter grid search."""

import pytest

from repro.core.config import GreenGpuConfig
from repro.errors import ConfigError
from repro.extensions.tuner import grid_search_wma_params


@pytest.fixture(scope="module")
def result():
    return grid_search_wma_params(
        workloads=["kmeans", "pathfinder"],
        alpha_core_grid=(0.05, 0.15, 0.40),
        alpha_mem_grid=(0.02, 0.15),
        phi_grid=(0.3,),
        beta_grid=(0.2,),
        time_scale=0.05,
        n_iterations=2,
        slowdown_budget=0.05,
    )


class TestGridSearch:
    def test_evaluates_full_grid(self, result):
        assert len(result.points) == 6

    def test_best_point_feasible_when_possible(self, result):
        if any(p.feasible for p in result.points):
            assert result.best.feasible

    def test_best_point_maximizes_saving(self, result):
        feasible = [p for p in result.points if p.feasible]
        pool = feasible if feasible else result.points
        assert result.best.mean_saving == max(p.mean_saving for p in pool)

    def test_paper_config_is_on_grid_and_competitive(self, result):
        """The paper's hand-tuned point must be found and must respect
        the paper's own slowdown objective."""
        paper = result.point_for(GreenGpuConfig())
        assert paper is not None
        assert paper.feasible
        assert paper.mean_saving > 0.0

    def test_point_for_missing_config(self, result):
        off_grid = GreenGpuConfig(alpha_core=0.11)
        assert result.point_for(off_grid) is None

    def test_rejects_empty_training_set(self):
        with pytest.raises(ConfigError):
            grid_search_wma_params(workloads=[])
