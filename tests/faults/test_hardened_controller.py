"""Tests for the hardened controller: the degradation ladder end to end.

Fault *semantics* are deterministic here: scripted monitor/actuator stubs
are swapped into the attached controller, so each test controls exactly
which tick faults.  The seeded-randomness integration lives in
``tests/properties/test_prop_faults.py``.
"""

import numpy as np
import pytest

from repro.core.config import GreenGpuConfig
from repro.core.controller import GreenGpuController, HardeningPolicy, TierMode
from repro.core.policies import FrequencyScalingOnlyPolicy, GreenGpuPolicy
from repro.errors import MonitorError, SimulationError
from repro.faults.injector import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.runtime.executor import run_workload
from repro.sim.trace import TraceRecorder

from tests.conftest import fast_workload


class ScriptedGpuMonitor:
    """nvidia-smi stand-in that fails per a scripted verdict list."""

    def __init__(self, inner, fails):
        self._inner = inner
        self._fails = list(fails)
        self.always_fail = False

    def query(self):
        fail = self.always_fail or (self._fails.pop(0) if self._fails else False)
        if fail:
            raise MonitorError("scripted monitor fault")
        return self._inner.query()

    def peek_clocks(self):
        return self._inner.peek_clocks()


class IgnoringActuator:
    """nvidia-settings stand-in that silently ignores the first N writes."""

    def __init__(self, gpu, ignore_first):
        self._gpu = gpu
        self.ignores_left = ignore_first
        self.calls = 0

    def set_frequencies(self, f_core, f_mem):
        self.calls += 1
        if self.ignores_left > 0:
            self.ignores_left -= 1
            return
        self._gpu.set_frequencies(f_core, f_mem)


def attach_scaling_only(testbed, fast_config, **kwargs):
    ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config, **kwargs)
    ctrl.attach(testbed)
    return ctrl


class TestHardeningPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(SimulationError):
            HardeningPolicy(stale_window_ticks=-1)
        with pytest.raises(SimulationError):
            HardeningPolicy(watchdog_threshold=0)


class TestMonitorFallback:
    def test_single_fault_falls_back_to_last_sample(self, testbed, fast_config):
        ctrl = attach_scaling_only(testbed, fast_config)
        testbed.run_for(fast_config.scaling_interval_s)  # one clean tick
        ctrl._nvsmi = ScriptedGpuMonitor(ctrl._nvsmi, fails=[True])
        testbed.run_for(fast_config.scaling_interval_s)
        assert ctrl.health.monitor_faults == 1
        assert ctrl.health.fallbacks == 1
        assert ctrl.health.skipped_ticks == 0
        assert ctrl.scaler.decisions == 2  # the faulty tick still decided
        assert not ctrl.degraded

    def test_no_sample_ever_means_skip(self, testbed, fast_config):
        ctrl = attach_scaling_only(testbed, fast_config)
        ctrl._nvsmi = ScriptedGpuMonitor(ctrl._nvsmi, fails=[True, True])
        testbed.run_for(2 * fast_config.scaling_interval_s)
        assert ctrl.health.skipped_ticks == 2
        assert ctrl.health.fallbacks == 0
        assert ctrl.scaler.decisions == 0

    def test_stale_window_expires_into_skip(self, testbed, fast_config):
        ctrl = attach_scaling_only(testbed, fast_config)  # stale window = 3 ticks
        testbed.run_for(fast_config.scaling_interval_s)  # clean tick at t=T
        monitor = ScriptedGpuMonitor(ctrl._nvsmi, fails=[])
        monitor.always_fail = True
        ctrl._nvsmi = monitor
        testbed.run_for(4 * fast_config.scaling_interval_s)
        # Ages at the 4 faulty ticks: 1T, 2T, 3T (fallbacks), 4T (skip).
        assert ctrl.health.fallbacks == 3
        assert ctrl.health.skipped_ticks == 1

    def test_events_are_recorded_on_the_trace(self, testbed, fast_config):
        rec = TraceRecorder()
        ctrl = attach_scaling_only(testbed, fast_config, recorder=rec)
        testbed.run_for(fast_config.scaling_interval_s)
        ctrl._nvsmi = ScriptedGpuMonitor(ctrl._nvsmi, fails=[True])
        testbed.run_for(fast_config.scaling_interval_s)
        assert len(rec.trace("ctrl_fallback")) == 1


class TestWatchdog:
    def make_dead_monitor_ctrl(self, testbed, fast_config):
        ctrl = attach_scaling_only(testbed, fast_config)
        monitor = ScriptedGpuMonitor(ctrl._nvsmi, fails=[])
        monitor.always_fail = True
        ctrl._nvsmi = monitor
        return ctrl, monitor

    def test_degrades_after_threshold_and_goes_to_peak(self, testbed, fast_config):
        ctrl, _ = self.make_dead_monitor_ctrl(testbed, fast_config)
        threshold = ctrl.hardening.watchdog_threshold
        testbed.run_for((threshold - 1) * fast_config.scaling_interval_s)
        assert not ctrl.degraded
        testbed.run_for(fast_config.scaling_interval_s)
        assert ctrl.degraded
        assert ctrl.health.degraded_entries == 1
        assert testbed.gpu.f_core == testbed.gpu.spec.core_ladder.peak
        assert testbed.gpu.f_mem == testbed.gpu.spec.mem_ladder.peak

    def test_recovers_on_first_clean_tick(self, testbed, fast_config):
        ctrl, monitor = self.make_dead_monitor_ctrl(testbed, fast_config)
        threshold = ctrl.hardening.watchdog_threshold
        testbed.run_for((threshold + 1) * fast_config.scaling_interval_s)
        assert ctrl.degraded
        monitor.always_fail = False  # the monitor comes back
        testbed.run_for(2 * fast_config.scaling_interval_s)  # >= 1 clean tick
        assert not ctrl.degraded
        assert ctrl.health.recoveries == 1

    def test_degraded_state_is_visible_on_the_trace(self, testbed, fast_config):
        rec = TraceRecorder()
        ctrl = attach_scaling_only(testbed, fast_config, recorder=rec)
        monitor = ScriptedGpuMonitor(ctrl._nvsmi, fails=[])
        monitor.always_fail = True
        ctrl._nvsmi = monitor
        testbed.run_for(6 * fast_config.scaling_interval_s)
        monitor.always_fail = False
        testbed.run_for(2 * fast_config.scaling_interval_s)
        degraded = rec.trace("ctrl_degraded")
        assert list(degraded.values) == [1.0, 0.0]  # entered, then recovered


class TestActuationRetry:
    def test_retry_lands_an_ignored_write(self, testbed, fast_config):
        testbed.gpu.set_peak()  # idle WMA decision (floor) forces a write
        ctrl = attach_scaling_only(testbed, fast_config)
        ctrl._actuator = IgnoringActuator(testbed.gpu, ignore_first=1)
        testbed.run_for(fast_config.scaling_interval_s)
        assert ctrl.health.retries == 1
        assert ctrl.health.actuation_faults == 0
        assert testbed.gpu.f_core == testbed.gpu.spec.core_ladder.floor
        assert not ctrl.degraded

    def test_exhausted_retries_count_an_actuation_fault(self, testbed, fast_config):
        testbed.gpu.set_peak()
        ctrl = attach_scaling_only(testbed, fast_config)
        actuator = IgnoringActuator(testbed.gpu, ignore_first=10**9)
        ctrl._actuator = actuator
        testbed.run_for(fast_config.scaling_interval_s)
        max_attempts = ctrl.hardening.retry.max_attempts
        assert actuator.calls == max_attempts
        assert ctrl.health.retries == max_attempts - 1
        assert ctrl.health.actuation_faults == 1

    def test_persistent_write_failure_trips_the_watchdog(self, testbed, fast_config):
        testbed.gpu.set_peak()
        ctrl = attach_scaling_only(testbed, fast_config)
        ctrl._actuator = IgnoringActuator(testbed.gpu, ignore_first=10**9)
        threshold = ctrl.hardening.watchdog_threshold
        testbed.run_for((threshold + 1) * fast_config.scaling_interval_s)
        assert ctrl.degraded


class TestFrozenDivision:
    def degrade(self, ctrl, testbed, fast_config):
        monitor = ScriptedGpuMonitor(ctrl._nvsmi, fails=[])
        monitor.always_fail = True
        ctrl._nvsmi = monitor
        threshold = ctrl.hardening.watchdog_threshold
        testbed.run_for((threshold + 1) * fast_config.scaling_interval_s)
        assert ctrl.degraded
        return monitor

    def test_division_is_frozen_while_degraded(self, testbed, fast_config):
        ctrl = GreenGpuController(
            TierMode.HOLISTIC, fast_config, initial_ratio=0.30
        )
        ctrl.attach(testbed)
        monitor = self.degrade(ctrl, testbed, fast_config)
        assert ctrl.on_iteration_end(tc=10.0, tg=1.0) == pytest.approx(0.30)
        assert ctrl.health.frozen_divisions == 1
        monitor.always_fail = False
        testbed.run_for(2 * fast_config.scaling_interval_s)
        assert not ctrl.degraded
        assert ctrl.on_iteration_end(tc=10.0, tg=1.0) != pytest.approx(0.30)


class TestZeroFaultTransparency:
    """With an all-zero-rate plan, hardening must be bit-invisible.

    These runs mirror the fig5 (scaling-only) and fig7 (holistic) trace
    shapes at the fast test scale.
    """

    def assert_identical(self, plain, faulted):
        assert faulted.total_s == plain.total_s
        assert faulted.total_energy_j == plain.total_energy_j
        assert faulted.final_ratio == plain.final_ratio
        assert sorted(faulted.traces) == sorted(plain.traces)
        for channel, trace in plain.traces.items():
            other = faulted.traces[channel]
            assert np.array_equal(other.times, trace.times), channel
            assert np.array_equal(other.values, trace.values), channel
        assert faulted.health.total_events == 0

    @pytest.mark.parametrize(
        ("policy_factory", "workload_name"),
        [(FrequencyScalingOnlyPolicy, "streamcluster"), (GreenGpuPolicy, "kmeans")],
        ids=["fig5-scaling-only", "fig7-holistic"],
    )
    def test_zero_fault_plan_is_bit_identical(
        self, policy_factory, workload_name, fast_config, fast_options
    ):
        def run(plan):
            policy = policy_factory(config=fast_config).with_faults(plan)
            return run_workload(
                fast_workload(workload_name), policy,
                n_iterations=4, options=fast_options,
            )

        self.assert_identical(run(None), run(FaultPlan()))
