"""Tests for the seeded fault plan / injector."""

import pytest

from repro.errors import ConfigError
from repro.faults.injector import (
    FAULT_KIND_RATES,
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    fault_profile,
)
from repro.sim.engine import SimClock
from repro.sim.trace import TraceRecorder


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert not FaultPlan().any_faults

    def test_any_faults_detects_rates_and_episodes(self):
        assert FaultPlan(monitor_timeout_rate=0.1).any_faults
        assert FaultPlan(stall_episodes=((1.0, 2.0),)).any_faults

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ConfigError):
            FaultPlan(monitor_timeout_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(actuator_reject_rate=-0.1)

    def test_rejects_bad_episode(self):
        with pytest.raises(ConfigError):
            FaultPlan(stall_episodes=((-1.0, 2.0),))
        with pytest.raises(ConfigError):
            FaultPlan(stall_episodes=((1.0, 0.0),))

    def test_rejects_bad_stall_duration(self):
        with pytest.raises(ConfigError):
            FaultPlan(device_stall_duration_s=0.0)

    def test_every_kind_maps_to_a_real_rate_field(self):
        plan = FaultPlan()
        for kind in FAULT_KIND_RATES:
            assert plan.rate_for(kind) == 0.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            FaultPlan().rate_for("meteor_strike")


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(FAULT_PROFILES))
    def test_profiles_build_and_carry_seed(self, name):
        plan = fault_profile(name, seed=42)
        assert plan.seed == 42
        assert plan.any_faults

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigError):
            fault_profile("catastrophic")


class TestInjector:
    def test_zero_rate_never_fires(self):
        inj = FaultInjector(FaultPlan())
        assert not any(inj.fire("gpu_monitor_timeout") for _ in range(100))
        assert inj.total_injected == 0

    def test_rate_one_always_fires_and_counts(self):
        inj = FaultInjector(FaultPlan(monitor_timeout_rate=1.0))
        assert all(inj.fire("gpu_monitor_timeout") for _ in range(10))
        assert inj.counts["gpu_monitor_timeout"] == 10
        assert inj.total_injected == 10

    def test_deterministic_for_a_seed(self):
        def stream(seed):
            inj = FaultInjector(FaultPlan(seed=seed, monitor_timeout_rate=0.3))
            return [inj.fire("gpu_monitor_timeout") for _ in range(200)]

        assert stream(7) == stream(7)
        assert stream(7) != stream(8)

    def test_recorder_gets_every_injected_fault(self):
        recorder = TraceRecorder()
        clock = SimClock()
        inj = FaultInjector(FaultPlan(seed=1, actuator_reject_rate=0.5))
        inj.bind(clock=clock, recorder=recorder)
        hits = 0
        for _ in range(50):
            clock.advance_by(1.0)
            if inj.fire("actuator_reject"):
                hits += 1
        assert hits > 0
        assert len(recorder.trace("fault_actuator_reject")) == hits

    def test_now_defaults_to_zero_without_clock(self):
        assert FaultInjector(FaultPlan()).now == 0.0

    def test_trace_episodes_scheduled_on_bind(self):
        class FakeActuator:
            def __init__(self):
                self.stalls = []

            def begin_stall(self, duration):
                self.stalls.append(duration)

        clock = SimClock()
        inj = FaultInjector(FaultPlan(stall_episodes=((2.0, 1.5), (5.0, 0.5))))
        actuator = FakeActuator()
        inj.attach_actuator(actuator)
        inj.bind(clock=clock)
        clock.advance_by(10.0)
        assert actuator.stalls == [1.5, 0.5]
        assert inj.counts["device_stall"] == 2

    def test_past_episodes_skipped(self):
        clock = SimClock()
        clock.advance_by(5.0)
        inj = FaultInjector(FaultPlan(stall_episodes=((2.0, 1.0),)))
        inj.bind(clock=clock)  # must not raise "cannot schedule in the past"
        clock.advance_by(10.0)
        assert inj.total_injected == 0
