"""Tests for the capped-backoff retry helper."""

import pytest

from repro.errors import ActuationError, ConfigError, MonitorError
from repro.faults.retry import RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=10.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=10.0, max_backoff_s=0.5)
        assert policy.backoff_s(5) == pytest.approx(0.5)

    def test_unknown_jitter_mode_rejected(self):
        with pytest.raises(ConfigError, match="jitter"):
            RetryPolicy(jitter="full")


class TestDecorrelatedJitter:
    POLICY = RetryPolicy(max_attempts=10, base_backoff_s=0.05,
                         max_backoff_s=2.0, jitter="decorrelated",
                         jitter_seed=42)

    def test_draws_stay_inside_envelope(self):
        state = self.POLICY.backoff_state("job")
        prev = self.POLICY.base_backoff_s
        for _ in range(50):
            backoff = state.next_backoff()
            assert self.POLICY.base_backoff_s <= backoff <= self.POLICY.max_backoff_s
            assert backoff <= max(prev * 3.0, self.POLICY.base_backoff_s)
            prev = backoff

    def test_seeded_streams_are_deterministic(self):
        a = [self.POLICY.backoff_state("job").next_backoff() for _ in range(3)]
        assert a == [a[0]] * 3  # fresh state, same salt: same first draw
        s1 = self.POLICY.backoff_state("job")
        s2 = self.POLICY.backoff_state("job")
        assert [s1.next_backoff() for _ in range(8)] == \
               [s2.next_backoff() for _ in range(8)]

    def test_salts_decorrelate_jobs_sharing_one_policy(self):
        # The thundering-herd property: a fleet retrying under the same
        # seeded policy must not sleep in lockstep.
        firsts = {self.POLICY.backoff_state(f"job-{i}").next_backoff()
                  for i in range(16)}
        assert len(firsts) == 16

    def test_jitter_none_matches_legacy_schedule(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=2.0,
                             max_backoff_s=10.0)
        state = policy.backoff_state("anything")
        assert [state.next_backoff() for _ in range(3)] == \
               [policy.backoff_s(i) for i in range(3)]

    def test_unseeded_jitter_still_bounded(self):
        policy = RetryPolicy(jitter="decorrelated")
        state = policy.backoff_state()
        for _ in range(20):
            backoff = state.next_backoff()
            assert policy.base_backoff_s <= backoff <= policy.max_backoff_s


class TestCallWithRetry:
    def test_first_try_success_uses_no_retries(self):
        result, retries = call_with_retry(lambda: 42)
        assert result == 42
        assert retries == 0

    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ActuationError("transient")
            return "ok"

        result, retries = call_with_retry(
            flaky, policy=RetryPolicy(max_attempts=3)
        )
        assert result == "ok"
        assert retries == 2
        assert len(attempts) == 3

    def test_exhaustion_raises_last_error(self):
        def always_fails():
            raise ActuationError("permanent")

        with pytest.raises(ActuationError, match="permanent"):
            call_with_retry(always_fails, policy=RetryPolicy(max_attempts=3))

    def test_on_retry_sees_attempt_and_backoff(self):
        seen = []

        def fail_twice(state=[0]):
            state[0] += 1
            if state[0] < 3:
                raise MonitorError("nope")
            return state[0]

        call_with_retry(
            fail_twice,
            policy=RetryPolicy(max_attempts=5, base_backoff_s=0.05, backoff_factor=2.0),
            on_retry=lambda attempt, backoff, exc: seen.append((attempt, backoff)),
        )
        assert seen == [(0, pytest.approx(0.05)), (1, pytest.approx(0.1))]

    def test_unexpected_exception_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            call_with_retry(boom, policy=RetryPolicy(max_attempts=5))
        assert len(calls) == 1
