"""Tests for the capped-backoff retry helper."""

import pytest

from repro.errors import ActuationError, MonitorError
from repro.faults.retry import RetryPolicy, call_with_retry


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=10.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_backoff_s=0.1, backoff_factor=10.0, max_backoff_s=0.5)
        assert policy.backoff_s(5) == pytest.approx(0.5)


class TestCallWithRetry:
    def test_first_try_success_uses_no_retries(self):
        result, retries = call_with_retry(lambda: 42)
        assert result == 42
        assert retries == 0

    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ActuationError("transient")
            return "ok"

        result, retries = call_with_retry(
            flaky, policy=RetryPolicy(max_attempts=3)
        )
        assert result == "ok"
        assert retries == 2
        assert len(attempts) == 3

    def test_exhaustion_raises_last_error(self):
        def always_fails():
            raise ActuationError("permanent")

        with pytest.raises(ActuationError, match="permanent"):
            call_with_retry(always_fails, policy=RetryPolicy(max_attempts=3))

    def test_on_retry_sees_attempt_and_backoff(self):
        seen = []

        def fail_twice(state=[0]):
            state[0] += 1
            if state[0] < 3:
                raise MonitorError("nope")
            return state[0]

        call_with_retry(
            fail_twice,
            policy=RetryPolicy(max_attempts=5, base_backoff_s=0.05, backoff_factor=2.0),
            on_retry=lambda attempt, backoff, exc: seen.append((attempt, backoff)),
        )
        assert seen == [(0, pytest.approx(0.05)), (1, pytest.approx(0.1))]

    def test_unexpected_exception_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            call_with_retry(boom, policy=RetryPolicy(max_attempts=5))
        assert len(calls) == 1
