"""Tests for the fault-injecting monitor / actuator / meter wrappers."""

import pytest

from repro.errors import ActuationError, MonitorError
from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.wrappers import (
    FaultyCpuStat,
    FaultyGpuActuator,
    FaultyNvidiaSmi,
    LossyPowerMeter,
)
from repro.monitors.cpustat import CpuStat
from repro.monitors.nvsmi import NvidiaSmi
from repro.sim.cpu import CpuDevice
from repro.sim.gpu import GpuDevice
from repro.sim.calibration import geforce_8800_gtx_spec, phenom_ii_x2_spec


class ScriptedInjector:
    """Injector double firing a fixed per-kind verdict sequence.

    Rate-driven draws are seeded but not addressable per call site; tests
    of wrapper *semantics* need exact fault timing, so this double keeps
    the real bookkeeping (counts) while scripting the verdicts.
    """

    def __init__(self, **script):
        self._script = {k: list(v) for k, v in script.items()}
        self.counts = {}
        self.plan = FaultPlan(device_stall_duration_s=4.0)
        self._now = 0.0

    def fire(self, kind):
        seq = self._script.get(kind)
        hit = bool(seq.pop(0)) if seq else False
        if hit:
            self.counts[kind] = self.counts.get(kind, 0) + 1
        return hit

    def attach_actuator(self, actuator):
        pass

    @property
    def now(self):
        return self._now

    def advance(self, dt):
        self._now += dt


@pytest.fixture
def gpu():
    return GpuDevice(geforce_8800_gtx_spec())


@pytest.fixture
def cpu():
    return CpuDevice(phenom_ii_x2_spec())


class TestFaultyNvidiaSmi:
    def test_zero_rate_plan_is_transparent(self, gpu):
        clean = NvidiaSmi(gpu)
        faulty = FaultyNvidiaSmi(NvidiaSmi(gpu), FaultInjector(FaultPlan()))
        gpu.advance(1.0)
        a, b = clean.query(), faulty.query()
        assert (a.t, a.window_s, a.u_core, a.u_mem) == (b.t, b.window_s, b.u_core, b.u_mem)

    def test_timeout_does_not_consume_window(self, gpu):
        smi = FaultyNvidiaSmi(
            NvidiaSmi(gpu), ScriptedInjector(gpu_monitor_timeout=[True, False])
        )
        gpu.advance(1.0)
        with pytest.raises(MonitorError):
            smi.query()
        gpu.advance(1.0)
        # The stalled read never happened: next success spans both windows.
        assert smi.query().window_s == pytest.approx(2.0)

    def test_drop_consumes_window(self, gpu):
        smi = FaultyNvidiaSmi(
            NvidiaSmi(gpu), ScriptedInjector(gpu_monitor_drop=[True, False])
        )
        gpu.advance(1.0)
        with pytest.raises(MonitorError):
            smi.query()
        gpu.advance(1.0)
        # The read completed before the sample was lost: window restarted.
        assert smi.query().window_s == pytest.approx(1.0)

    def test_freeze_returns_zero_utilization(self, gpu):
        gpu.set_peak()
        smi = FaultyNvidiaSmi(
            NvidiaSmi(gpu), ScriptedInjector(gpu_monitor_freeze=[True])
        )
        gpu.advance(1.0)
        sample = smi.query()
        assert sample.u_core == 0.0 and sample.u_mem == 0.0
        assert sample.f_core == gpu.f_core  # clocks still report truthfully

    def test_peek_clocks_passthrough(self, gpu):
        smi = FaultyNvidiaSmi(NvidiaSmi(gpu), FaultInjector(FaultPlan()))
        assert smi.peek_clocks() == (gpu.f_core, gpu.f_mem)


class TestFaultyCpuStat:
    def test_timeout_then_clean_read(self, cpu):
        stat = FaultyCpuStat(
            CpuStat(cpu), ScriptedInjector(cpu_monitor_timeout=[True, False])
        )
        cpu.advance(0.5)
        with pytest.raises(MonitorError):
            stat.query()
        cpu.advance(0.5)
        assert stat.query().window_s == pytest.approx(1.0)

    def test_freeze_returns_zero_utilization(self, cpu):
        cpu.spin()
        stat = FaultyCpuStat(CpuStat(cpu), ScriptedInjector(cpu_monitor_freeze=[True]))
        cpu.advance(1.0)
        assert stat.query().u == 0.0


class TestFaultyGpuActuator:
    def peak(self, gpu):
        spec = gpu.spec
        return spec.core_ladder.peak, spec.mem_ladder.peak

    def test_clean_write_passes_through(self, gpu):
        act = FaultyGpuActuator(gpu, FaultInjector(FaultPlan()))
        act.set_frequencies(*self.peak(gpu))
        assert gpu.f_core == gpu.spec.core_ladder.peak

    def test_rejected_write_raises_and_leaves_clocks(self, gpu):
        act = FaultyGpuActuator(gpu, ScriptedInjector(actuator_reject=[True]))
        before = (gpu.f_core, gpu.f_mem)
        with pytest.raises(ActuationError):
            act.set_frequencies(*self.peak(gpu))
        assert (gpu.f_core, gpu.f_mem) == before

    def test_ignored_write_is_silent_and_does_nothing(self, gpu):
        act = FaultyGpuActuator(gpu, ScriptedInjector(actuator_ignore=[True]))
        before = (gpu.f_core, gpu.f_mem)
        act.set_frequencies(*self.peak(gpu))  # no exception
        assert (gpu.f_core, gpu.f_mem) == before

    def test_offby_lands_one_level_low(self, gpu):
        act = FaultyGpuActuator(gpu, ScriptedInjector(actuator_offby=[True]))
        act.set_frequencies(*self.peak(gpu))
        assert gpu.core_level == 1
        assert gpu.mem_level == 1

    def test_offby_clamps_at_floor(self, gpu):
        act = FaultyGpuActuator(gpu, ScriptedInjector(actuator_offby=[True]))
        spec = gpu.spec
        act.set_frequencies(spec.core_ladder.floor, spec.mem_ladder.floor)
        assert gpu.f_core == spec.core_ladder.floor

    def test_stall_pins_floor_and_swallows_writes_until_expiry(self, gpu):
        gpu.set_peak()
        injector = ScriptedInjector(device_stall=[True, False, False])
        act = FaultyGpuActuator(gpu, injector)
        act.set_frequencies(*self.peak(gpu))  # draw hits: stall begins
        assert act.stalled
        assert gpu.f_core == gpu.spec.core_ladder.floor
        act.set_frequencies(*self.peak(gpu))  # swallowed while pinned
        assert gpu.f_core == gpu.spec.core_ladder.floor
        injector.advance(4.0)  # plan's device_stall_duration_s
        assert not act.stalled
        act.set_frequencies(*self.peak(gpu))  # recovered: write lands
        assert gpu.f_core == gpu.spec.core_ladder.peak


class TestLossyPowerMeter:
    def make(self, rate, seed=0):
        injector = FaultInjector(FaultPlan(seed=seed, meter_loss_rate=rate))
        return LossyPowerMeter("wall", [lambda: 100.0], injector)

    def test_zero_rate_keeps_every_sample(self):
        meter = self.make(0.0)
        meter.accumulate(10.0)
        assert len(meter.samples) == 10
        assert meter.dropped_samples == 0

    def test_loss_drops_log_entries_not_energy(self):
        meter = self.make(1.0)
        meter.accumulate(10.0)
        assert meter.samples == []
        assert meter.dropped_samples == 10
        assert meter.energy_j == pytest.approx(1000.0)  # integral untouched

    def test_partial_loss_accounts_for_every_sample(self):
        meter = self.make(0.4, seed=3)
        meter.accumulate(50.0)
        assert len(meter.samples) + meter.dropped_samples == 50
        assert 0 < meter.dropped_samples < 50
