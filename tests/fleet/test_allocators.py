"""Allocator unit tests: floors, conservation, slack, policy shape."""

import pytest

from repro.errors import ConfigError
from repro.fleet.allocators import (
    ALLOCATORS,
    NodeDemand,
    get_allocator,
    spare_budget,
)


def demand(node_id, floor=100.0, peak=300.0, want=None, eff=1.0):
    d = floor + (want if want is not None else peak - floor)
    return NodeDemand(node_id=node_id, floor_w=floor, peak_w=peak,
                      demand_w=d, efficiency=eff)


ALL_NAMES = sorted(ALLOCATORS)


class TestNodeDemand:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            NodeDemand(0, floor_w=0.0, peak_w=100.0, demand_w=50.0)
        with pytest.raises(ConfigError):
            NodeDemand(0, floor_w=200.0, peak_w=100.0, demand_w=150.0)
        with pytest.raises(ConfigError):
            NodeDemand(0, floor_w=100.0, peak_w=200.0, demand_w=250.0)
        with pytest.raises(ConfigError):
            NodeDemand(0, floor_w=100.0, peak_w=200.0, demand_w=150.0,
                       efficiency=-1.0)

    def test_headroom_and_want(self):
        d = demand(0, floor=100.0, peak=300.0, want=50.0)
        assert d.headroom_w == pytest.approx(200.0)
        assert d.want_w == pytest.approx(50.0)


class TestRegistry:
    def test_get_allocator_known(self):
        for name in ALL_NAMES:
            assert get_allocator(name).name == name

    def test_get_allocator_unknown(self):
        with pytest.raises(ConfigError, match="unknown allocator"):
            get_allocator("round-robin")


class TestFloorsAndConservation:
    def test_infeasible_budget_rejected(self):
        demands = [demand(i) for i in range(4)]
        with pytest.raises(ConfigError, match="below the fleet floor"):
            spare_budget(demands, 399.0)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_floors_always_granted(self, name):
        demands = [demand(i, want=0.0 if i % 2 else 150.0) for i in range(6)]
        caps = get_allocator(name).allocate(demands, 650.0)
        for d, cap in zip(demands, caps):
            assert cap >= d.floor_w - 1e-9
            assert cap <= d.peak_w + 1e-9

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sum_never_exceeds_budget(self, name):
        demands = [demand(i, floor=90.0 + i, peak=310.0 - i,
                          want=17.3 * (i % 5), eff=float(i % 3))
                   for i in range(9)]
        for budget in (846.0, 1000.0, 1234.5, 5000.0):
            caps = get_allocator(name).allocate(demands, budget)
            assert sum(caps) <= budget + 1e-6

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_budget_exactly_at_floor_sum(self, name):
        demands = [demand(i, want=100.0) for i in range(5)]
        caps = get_allocator(name).allocate(demands, 500.0)
        assert caps == pytest.approx([100.0] * 5)


class TestPolicies:
    def test_uniform_is_demand_blind(self):
        starving = [demand(0, want=200.0), demand(1, want=0.0)]
        caps = get_allocator("uniform-cap").allocate(starving, 300.0)
        # 100 W of headroom split evenly regardless of who asked.
        assert caps == pytest.approx([150.0, 150.0])

    def test_proportional_follows_demand(self):
        demands = [demand(0, want=150.0), demand(1, want=50.0)]
        caps = get_allocator("proportional-share").allocate(demands, 300.0)
        assert caps == pytest.approx([175.0, 125.0])

    def test_proportional_banks_slack_when_demand_fits(self):
        demands = [demand(0, want=30.0), demand(1, want=10.0)]
        caps = get_allocator("proportional-share").allocate(demands, 400.0)
        assert caps == pytest.approx([130.0, 110.0])
        assert sum(caps) < 400.0  # slack stays at the coordinator

    def test_efficiency_weighted_greedy_order(self):
        demands = [demand(0, want=150.0, eff=1.0),
                   demand(1, want=150.0, eff=5.0)]
        caps = get_allocator("efficiency-weighted").allocate(demands, 300.0)
        # The efficient node drains the whole 100 W pool first.
        assert caps == pytest.approx([100.0, 200.0])

    def test_efficiency_ties_break_on_node_id(self):
        demands = [demand(0, want=150.0, eff=2.0),
                   demand(1, want=150.0, eff=2.0)]
        caps = get_allocator("efficiency-weighted").allocate(demands, 300.0)
        assert caps == pytest.approx([200.0, 100.0])

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_idle_nodes_donate_slack(self, name):
        demands = [demand(0, want=0.0), demand(1, want=0.0),
                   demand(2, want=200.0, eff=3.0)]
        caps = get_allocator(name).allocate(demands, 420.0)
        # 120 W of headroom; the idle pair holds its floor under the
        # demand-aware policies, so the busy node borrows their share.
        if name != "uniform-cap":
            assert caps[0] == pytest.approx(100.0)
            assert caps[1] == pytest.approx(100.0)
            assert caps[2] == pytest.approx(220.0)
        assert sum(caps) <= 420.0 + 1e-6
