"""End-to-end tests for the ``greengpu fleet`` subcommand."""

import json

import pytest

from repro.cli import main

FAST = ["--nodes", "6", "--nodes-per-rack", "3", "--duration", "36",
        "--interval", "12", "--seed", "13", "--budget-frac", "0.35"]


class TestFleetCommand:
    def test_single_allocator_table(self, capsys):
        assert main(["fleet", *FAST]) == 0
        out = capsys.readouterr().out
        assert "fleet — diurnal, 6 nodes / 2 racks" in out
        assert "efficiency-weighted" in out
        assert "cap violations" in out

    def test_allocator_comparison_names_the_winner(self, capsys):
        assert main(["fleet", *FAST, "--allocator",
                     "uniform-cap,efficiency-weighted"]) == 0
        out = capsys.readouterr().out
        assert "uniform-cap" in out and "efficiency-weighted" in out
        assert "lowest fleet energy:" in out

    def test_out_writes_summaries(self, capsys, tmp_path):
        out_file = tmp_path / "fleet.json"
        assert main(["fleet", *FAST, "--allocator",
                     "uniform-cap,proportional-share",
                     "--out", str(out_file)]) == 0
        summaries = json.loads(out_file.read_text())
        assert [s["allocator"] for s in summaries] == [
            "uniform-cap", "proportional-share"]
        assert all(s["energy_j"] > 0 for s in summaries)

    def test_unknown_allocator_errors(self, capsys):
        assert main(["fleet", *FAST, "--allocator", "lottery"]) == 2
        assert "unknown allocator" in capsys.readouterr().err

    def test_telemetry_with_multiple_allocators_rejected(self, capsys,
                                                         tmp_path):
        assert main(["fleet", *FAST, "--allocator", "uniform-cap,proportional-share",
                     "--telemetry", str(tmp_path / "tel")]) == 2
        assert "single" in capsys.readouterr().err

    def test_resume_without_run_dir_rejected(self, capsys):
        assert main(["fleet", *FAST, "--resume"]) == 2
        assert "--run-dir" in capsys.readouterr().err


class TestFleetTelemetry:
    @pytest.fixture
    def telemetry_dir(self, capsys, tmp_path):
        tel = tmp_path / "tel"
        assert main(["fleet", *FAST, "--telemetry", str(tel)]) == 0
        capsys.readouterr()
        return tel

    def test_snapshot_and_summary_written(self, telemetry_dir):
        snapshot = json.loads((telemetry_dir / "snapshot.json").read_text())
        counters = {c["name"] for c in snapshot["counters"]}
        gauges = {g["name"] for g in snapshot["gauges"]}
        histograms = {h["name"] for h in snapshot["histograms"]}
        assert {"fleet_nodes_total",
                "fleet_cap_violation_ticks_total"} <= counters
        assert {"run_total_energy_j", "run_time_s"} <= gauges
        assert {"fleet_node_energy_j", "fleet_node_busy_end_s"} <= histograms
        summary = json.loads(
            (telemetry_dir / "fleet_summary.json").read_text())
        assert summary["n_nodes"] == 6
        assert len(summary["per_rack"]) == 2

    def test_identical_runs_diff_clean(self, capsys, telemetry_dir,
                                       tmp_path):
        other = tmp_path / "tel2"
        assert main(["fleet", *FAST, "--telemetry", str(other)]) == 0
        capsys.readouterr()
        assert main(["diff", str(telemetry_dir), str(other)]) == 0
        assert "DIVERGENT" not in capsys.readouterr().out

    def test_report_renders_fleet_layout(self, capsys, telemetry_dir):
        assert main(["report", str(telemetry_dir)]) == 0
        capsys.readouterr()
        html = (telemetry_dir / "report.html").read_text()
        assert "per-rack" in html.lower()
        assert "efficiency-weighted" in html
