"""Coordinator tests: budget schedule, demand model, plan invariants."""

import pytest

from repro.fleet.coordinator import PowerCapCoordinator
from repro.fleet.scenario import make_scenario


def coordinator(name="diurnal", n_nodes=12, allocator="efficiency-weighted",
                **overrides):
    overrides.setdefault("duration_s", 48.0)
    overrides.setdefault("day_length_s", 48.0)
    overrides.setdefault("nodes_per_rack", 4)
    scenario = make_scenario(name, n_nodes=n_nodes, seed=9, **overrides)
    return PowerCapCoordinator(scenario, allocator)


class TestBudget:
    def test_budget_interpolates_floor_to_peak(self):
        coord = coordinator(budget_frac=0.0)
        assert coord.budget_at(0.0) == pytest.approx(coord._total_floor_w)
        coord = coordinator(budget_frac=1.0)
        assert coord.budget_at(0.0) == pytest.approx(
            coord._total_floor_w + coord._total_headroom_w)

    def test_budget_follows_rolling_changes(self):
        coord = coordinator("rolling-caps", budget_frac=0.6)
        third = coord.scenario.duration_s / 3.0
        assert coord.budget_at(third) < coord.budget_at(0.0)
        assert coord.budget_at(2.0 * third) > coord.budget_at(third)


class TestPlan:
    @pytest.mark.parametrize("allocator", ["uniform-cap",
                                           "proportional-share",
                                           "efficiency-weighted"])
    def test_plan_covers_scenario_and_drains(self, allocator):
        coord = coordinator(allocator=allocator, budget_frac=0.3)
        plan = coord.plan()
        assert plan.allocator == allocator
        assert plan.scenario_windows == coord.scenario.n_windows
        assert plan.n_ticks >= plan.scenario_windows
        assert plan.n_nodes == coord.scenario.n_nodes
        # The drain horizon ends with the modeled fleet fully idle.
        assert plan.stats[-1].backlogged_nodes >= 0

    def test_caps_within_node_bounds(self):
        coord = coordinator(budget_frac=0.3)
        plan = coord.plan()
        for row in plan.caps:
            for node_id, cap in enumerate(row):
                profile = coord.profiles[node_id]
                assert profile.floor_w - 1e-9 <= cap <= profile.peak_w + 1e-9

    def test_caps_conserve_budget_every_tick(self):
        coord = coordinator("rolling-caps", budget_frac=0.4)
        plan = coord.plan()
        for row, stat in zip(plan.caps, plan.stats):
            assert sum(row) <= stat.budget_w + 1e-6
            assert stat.total_cap_w == pytest.approx(sum(row))

    def test_caps_for_returns_full_column(self):
        coord = coordinator()
        plan = coord.plan()
        column = plan.caps_for(3)
        assert len(column) == plan.n_ticks
        assert column == [row[3] for row in plan.caps]

    def test_burst_nodes_demand_their_floor(self):
        coord = coordinator("fault-bursts", n_nodes=40, budget_frac=0.5,
                            fault_burst_rack_frac=0.5)
        scenario = coord.scenario
        burst_nodes = [i for i in range(scenario.n_nodes)
                       if scenario.node_in_burst(i)]
        assert burst_nodes
        start, _ = scenario.fault_burst_windows[0]
        node = burst_nodes[0]
        demand = coord._demand(node, backlog_s=100.0, t=start)
        assert demand.demand_w == pytest.approx(
            coord.profiles[node].floor_w)
        # Outside the burst the same backlog asks for real headroom.
        demand = coord._demand(node, backlog_s=100.0, t=0.0)
        assert demand.demand_w > coord.profiles[node].floor_w

    def test_idle_fleet_plans_exactly_the_scenario(self):
        """Zero offered load: no backlog survives the scenario end, so
        the drain horizon adds no ticks."""
        coord = coordinator(load_floor=0.0, load_peak=0.0)
        plan = coord.plan()
        assert plan.n_ticks == plan.scenario_windows
