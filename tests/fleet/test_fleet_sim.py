"""FleetSim tests: aggregation math, inline/sharded parity, resume."""

import pytest

from repro.errors import ConfigError
from repro.fleet.coordinator import PowerCapCoordinator
from repro.fleet.scenario import make_scenario
from repro.fleet.sim import FleetSim, aggregate, run_fleet


def tiny_scenario(n_nodes=6, **overrides):
    overrides.setdefault("duration_s", 36.0)
    overrides.setdefault("day_length_s", 36.0)
    overrides.setdefault("nodes_per_rack", 3)
    overrides.setdefault("budget_frac", 0.35)
    return make_scenario("diurnal", n_nodes=n_nodes, seed=13, **overrides)


def fake_record(node_id, rack, energy, busy_end, idle_w):
    return {
        "node_id": node_id, "rack": rack, "hardware": "paper-8800gtx",
        "energy_j": energy, "busy_end_s": busy_end, "idle_power_w": idle_w,
        "violation_ticks": 0, "windows": 3, "submitted_work_s": 10.0,
        "faults_injected": 0, "degraded_entries": 0,
    }


class TestAggregate:
    def test_idle_tail_equalization(self):
        scenario = tiny_scenario(n_nodes=2, nodes_per_rack=1)
        plan = PowerCapCoordinator(scenario, "uniform-cap").plan()
        records = [
            fake_record(0, 0, energy=1000.0, busy_end=40.0, idle_w=100.0),
            fake_record(1, 1, energy=2000.0, busy_end=50.0, idle_w=200.0),
        ]
        result = aggregate(scenario, plan, records)
        assert result.makespan_s == pytest.approx(50.0)
        assert result.measured_energy_j == pytest.approx(3000.0)
        # Node 0 idles 10 s at 100 W until node 1 finishes.
        assert result.idle_tail_energy_j == pytest.approx(1000.0)
        assert result.energy_j == pytest.approx(4000.0)
        racks = {r["rack"]: r for r in result.per_rack}
        assert racks[0]["energy_j"] == pytest.approx(2000.0)
        assert racks[1]["energy_j"] == pytest.approx(2000.0)

    def test_rejects_wrong_record_count(self):
        scenario = tiny_scenario(n_nodes=3)
        plan = PowerCapCoordinator(scenario, "uniform-cap").plan()
        with pytest.raises(ConfigError, match="node results"):
            aggregate(scenario, plan, [fake_record(0, 0, 1.0, 1.0, 1.0)])

    def test_records_sorted_by_node_id(self):
        scenario = tiny_scenario(n_nodes=2, nodes_per_rack=1)
        plan = PowerCapCoordinator(scenario, "uniform-cap").plan()
        records = [
            fake_record(1, 1, energy=2.0, busy_end=1.0, idle_w=0.0),
            fake_record(0, 0, energy=1.0, busy_end=1.0, idle_w=0.0),
        ]
        result = aggregate(scenario, plan, records)
        assert [r["node_id"] for r in result.nodes] == [0, 1]


class TestInlineRun:
    def test_inline_run_completes(self):
        result = run_fleet(tiny_scenario(), "efficiency-weighted")
        assert result.n_nodes == 6
        assert result.violation_ticks == 0
        assert result.energy_j > 0.0
        assert result.makespan_s > 0.0
        assert len(result.nodes) == 6
        assert sum(r["nodes"] for r in result.per_rack) == 6

    def test_summary_is_json_ready(self):
        import json

        result = run_fleet(tiny_scenario(n_nodes=2), "uniform-cap")
        encoded = json.dumps(result.to_dict())
        decoded = json.loads(encoded)
        assert decoded["allocator"] == "uniform-cap"
        assert "nodes" not in decoded
        assert decoded["plan_stats"]

    def test_sharded_without_run_dir_rejected(self):
        with pytest.raises(ConfigError, match="run directory"):
            FleetSim(tiny_scenario(), "uniform-cap", shards=2)

    def test_shard_ranges_cover_fleet(self, tmp_path):
        sim = FleetSim(tiny_scenario(n_nodes=7), "uniform-cap", shards=3,
                       run_dir=str(tmp_path))
        ranges = sim.shard_ranges()
        assert ranges == [(0, 3), (3, 5), (5, 7)]

    def test_shards_clamped_to_fleet_size(self, tmp_path):
        sim = FleetSim(tiny_scenario(n_nodes=2), "uniform-cap", shards=8,
                       run_dir=str(tmp_path))
        assert sim.shards == 2


class TestShardedRun:
    def test_sharded_matches_inline_bit_for_bit(self, tmp_path):
        scenario = tiny_scenario()
        inline = run_fleet(scenario, "efficiency-weighted")
        sharded = run_fleet(scenario, "efficiency-weighted", shards=3,
                            parallel=2, run_dir=str(tmp_path / "run"))
        assert sharded.energy_j == inline.energy_j
        assert sharded.makespan_s == inline.makespan_s
        assert sharded.nodes == inline.nodes

    def test_resume_serves_completed_shards(self, tmp_path):
        scenario = tiny_scenario()
        run_dir = str(tmp_path / "run")
        first = FleetSim(scenario, "uniform-cap", shards=3, parallel=2,
                         run_dir=run_dir)
        result = first.run()
        assert result is not None
        again = FleetSim(scenario, "uniform-cap", shards=3, parallel=2,
                         run_dir=run_dir, resume=True)
        resumed = again.run()
        assert resumed is not None
        assert "resumed" in again.last_report.summary_line()
        assert resumed.energy_j == result.energy_j
