"""Node tests: watt->ladder translation, cap enforcement, power profile."""

import pytest

from repro.errors import ConfigError
from repro.extensions.hardware_table import (
    floor_wall_power_w,
    hardware_entry,
    peak_wall_power_w,
    wall_power_bound_w,
)
from repro.fleet.node import FleetNode, NodePowerProfile, ceiling_for_cap
from repro.fleet.scenario import FleetScenario


@pytest.fixture(scope="module")
def config():
    return hardware_entry("paper-8800gtx").make_config()


def tiny_scenario(**overrides):
    defaults = dict(name="tiny", n_nodes=4, nodes_per_rack=2,
                    duration_s=36.0, coordination_interval_s=12.0,
                    day_length_s=36.0, seed=5)
    defaults.update(overrides)
    return FleetScenario(**defaults)


class TestCeilingForCap:
    def test_generous_cap_leaves_peak_clocks(self, config):
        assert ceiling_for_cap(config, peak_wall_power_w(config)) == (0, 0)

    def test_infeasible_cap_falls_back_to_floors(self, config):
        n_core = len(config.gpu.core_ladder)
        n_mem = len(config.gpu.mem_ladder)
        assert ceiling_for_cap(config, 1.0) == (n_core - 1, n_mem - 1)

    def test_monotone_in_cap(self, config):
        """A tighter cap never yields a less restrictive ceiling."""
        floor_w = floor_wall_power_w(config)
        peak_w = peak_wall_power_w(config)
        caps = [floor_w + (peak_w - floor_w) * k / 20.0 for k in range(21)]
        pairs = [ceiling_for_cap(config, cap) for cap in caps]
        for tighter, looser in zip(pairs, pairs[1:]):
            assert tighter[0] >= looser[0]
            assert tighter[1] >= looser[1]

    def test_bound_honoured(self, config):
        """The chosen ceiling's worst-case draw fits the cap whenever any
        enforceable ceiling exists."""
        floor_w = floor_wall_power_w(config)
        peak_w = peak_wall_power_w(config)
        for k in range(21):
            cap = floor_w + (peak_w - floor_w) * k / 20.0
            pair = ceiling_for_cap(config, cap)
            assert wall_power_bound_w(config, *pair) <= cap + 1e-6


class TestNodePowerProfile:
    def test_from_config_bounds(self, config):
        profile = NodePowerProfile.from_config(config)
        assert profile.floor_w == pytest.approx(floor_wall_power_w(config))
        assert profile.peak_w == pytest.approx(peak_wall_power_w(config))
        assert 0.0 < profile.floor_speed < 1.0
        assert profile.efficiency > 0.0

    def test_speed_interpolates_and_clamps(self, config):
        profile = NodePowerProfile.from_config(config)
        assert profile.speed_at(profile.floor_w) == pytest.approx(
            profile.floor_speed)
        assert profile.speed_at(profile.peak_w) == pytest.approx(1.0)
        assert profile.speed_at(0.0) == pytest.approx(profile.floor_speed)
        assert profile.speed_at(1e9) == pytest.approx(1.0)
        mid = 0.5 * (profile.floor_w + profile.peak_w)
        assert (profile.floor_speed < profile.speed_at(mid) < 1.0)


class TestFleetNode:
    def test_rejects_non_positive_cap(self):
        node = FleetNode(0, tiny_scenario())
        with pytest.raises(ConfigError):
            node.apply_cap(0.0)
        node.controller.detach()

    def test_uncapped_run_has_no_violations(self):
        scenario = tiny_scenario()
        node = FleetNode(1, scenario)
        peak = peak_wall_power_w(node.config)
        result = node.run([peak] * scenario.n_windows)
        assert result.violation_ticks == 0
        assert result.windows == scenario.n_windows
        assert result.energy_j > 0.0
        assert result.busy_end_s >= scenario.duration_s
        assert result.submitted_work_s > 0.0

    def test_tight_cap_enforced_without_violations(self):
        """A cap just above the floor bound pins the ceiling near the
        ladder floors, and the measured window power honours it."""
        scenario = tiny_scenario()
        node = FleetNode(1, scenario)
        floor = floor_wall_power_w(node.config)
        cap = floor + 1.0
        ceiling = node.apply_cap(cap)
        assert ceiling != (0, 0)
        result = node.run([cap] * scenario.n_windows)
        assert result.violation_ticks == 0

    def test_tight_cap_slows_the_node(self):
        """Same node, same offered work: the capped run drains later and
        spends less energy per unit time while the cap is in force."""
        scenario = tiny_scenario()
        free = FleetNode(2, scenario)
        capped = FleetNode(2, scenario)
        peak = peak_wall_power_w(free.config)
        floor = floor_wall_power_w(free.config)
        free_result = free.run([peak] * scenario.n_windows)
        capped_result = capped.run([floor + 1.0] * scenario.n_windows)
        assert capped_result.busy_end_s > free_result.busy_end_s
        assert capped_result.submitted_work_s == pytest.approx(
            free_result.submitted_work_s)

    def test_peak_ceiling_matches_unceilinged_controller(self):
        """Ceiling (0, 0) is the controller's whole decision space — a
        node capped at its peak bound runs bit-identically to one whose
        controller never heard of ceilings."""
        scenario = tiny_scenario()
        plain = FleetNode(3, scenario)
        capped = FleetNode(3, scenario)
        peak = peak_wall_power_w(plain.config)
        windows = scenario.n_windows
        for window in range(windows):
            load = scenario.load(3, window)
            capped.apply_cap(peak)
            for node in (plain, capped):
                node.submit_window(load, scenario.coordination_interval_s)
                node.run_window(scenario.coordination_interval_s)
        plain_result, capped_result = plain.finish(), capped.finish()
        assert capped_result.energy_j == plain_result.energy_j
        assert capped_result.busy_end_s == plain_result.busy_end_s
