"""Scenario tests: validation, determinism, shard-independence, round-trip."""

import pytest

from repro.errors import ConfigError
from repro.fleet.scenario import (
    SCENARIOS,
    FleetScenario,
    make_scenario,
)


class TestValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigError):
            FleetScenario(name="x", n_nodes=0)

    def test_rejects_interval_past_duration(self):
        with pytest.raises(ConfigError):
            FleetScenario(name="x", n_nodes=4, duration_s=10.0,
                          coordination_interval_s=11.0)

    def test_rejects_unknown_hardware(self):
        with pytest.raises(ConfigError, match="unknown hardware entry"):
            FleetScenario(name="x", n_nodes=4,
                          hardware_mix=(("vaporware-9000", 1.0),))

    def test_rejects_unsorted_budget_changes(self):
        with pytest.raises(ConfigError, match="ascending"):
            FleetScenario(name="x", n_nodes=4,
                          budget_changes=((100.0, 0.4), (50.0, 0.6)))

    def test_rejects_unknown_fault_profile(self):
        with pytest.raises(ConfigError, match="fault profile"):
            FleetScenario(name="x", n_nodes=4, fault_profile="apocalyptic")

    def test_rejects_budget_frac_out_of_range(self):
        with pytest.raises(ConfigError):
            FleetScenario(name="x", n_nodes=4, budget_frac=1.5)


class TestTopology:
    def test_rack_layout(self):
        scn = FleetScenario(name="x", n_nodes=45, nodes_per_rack=20)
        assert scn.n_racks == 3
        assert scn.rack_of(0) == 0
        assert scn.rack_of(19) == 0
        assert scn.rack_of(20) == 1
        assert scn.rack_of(44) == 2

    def test_window_count_covers_duration(self):
        scn = FleetScenario(name="x", n_nodes=4, duration_s=100.0,
                            coordination_interval_s=12.0)
        assert scn.n_windows == 9  # ceil(100 / 12)
        scn = FleetScenario(name="x", n_nodes=4, duration_s=96.0,
                            coordination_interval_s=12.0)
        assert scn.n_windows == 8  # exact division, no phantom window


class TestBudgetSchedule:
    def test_rolling_caps_step(self):
        scn = make_scenario("rolling-caps", n_nodes=8, budget_frac=0.6)
        third = scn.duration_s / 3.0
        assert scn.budget_frac_at(0.0) == pytest.approx(0.6)
        assert scn.budget_frac_at(third) == pytest.approx(0.3)
        assert scn.budget_frac_at(2.0 * third) == pytest.approx(0.54)
        assert scn.budget_frac_at(scn.duration_s) == pytest.approx(0.54)


class TestDeterminism:
    def test_draws_are_stable_and_shard_independent(self):
        """Per-node draws key on the node id, never on iteration order."""
        scn = FleetScenario(name="x", n_nodes=50, seed=7)
        forward = [(scn.node_hardware(i), scn.node_mix(i), scn.node_phase(i))
                   for i in range(50)]
        backward = [(scn.node_hardware(i), scn.node_mix(i), scn.node_phase(i))
                    for i in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_seed_changes_the_fleet(self):
        a = FleetScenario(name="x", n_nodes=64, seed=1)
        b = FleetScenario(name="x", n_nodes=64, seed=2)
        assert ([a.node_hardware(i) for i in range(64)]
                != [b.node_hardware(i) for i in range(64)])

    def test_hardware_mix_draws_every_class(self):
        scn = FleetScenario(name="x", n_nodes=400, seed=0)
        drawn = {scn.node_hardware(i) for i in range(400)}
        assert drawn == {key for key, _ in scn.hardware_mix}

    def test_load_bounded_and_wavy(self):
        scn = FleetScenario(name="x", n_nodes=10, seed=3)
        loads = [scn.load(4, w) for w in range(scn.n_windows)]
        assert all(0.0 <= load <= 1.0 for load in loads)
        assert max(loads) - min(loads) > 0.2  # actually a wave, not flat


class TestFaultBursts:
    def test_burst_racks_subset_and_deterministic(self):
        scn = make_scenario("fault-bursts", n_nodes=200, seed=3)
        racks = scn.burst_racks()
        assert racks == scn.burst_racks()
        assert all(0 <= rack < scn.n_racks for rack in racks)
        assert 0 < len(racks) < scn.n_racks

    def test_burst_nodes_get_stall_episodes(self):
        scn = make_scenario("fault-bursts", n_nodes=200, seed=3)
        burst = [i for i in range(scn.n_nodes) if scn.node_in_burst(i)]
        calm = [i for i in range(scn.n_nodes) if not scn.node_in_burst(i)]
        assert burst and calm
        plan = scn.fault_plan_for(burst[0])
        assert plan is not None
        assert plan.stall_episodes == scn.fault_burst_windows
        assert scn.fault_plan_for(calm[0]) is None

    def test_sibling_nodes_draw_distinct_fault_seeds(self):
        scn = make_scenario("fault-bursts", n_nodes=200, seed=3)
        burst = [i for i in range(scn.n_nodes) if scn.node_in_burst(i)]
        seeds = {scn.fault_plan_for(i).seed for i in burst}
        assert len(seeds) == len(burst)


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_round_trip(self, name):
        scn = make_scenario(name, n_nodes=30, seed=11)
        clone = FleetScenario.from_dict(scn.to_dict())
        assert clone == scn

    def test_round_trip_survives_json(self):
        import json

        scn = make_scenario("rolling-caps", n_nodes=30, seed=11)
        clone = FleetScenario.from_dict(json.loads(json.dumps(scn.to_dict())))
        assert clone == scn

    def test_unknown_scenario_name(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            make_scenario("nocturnal", n_nodes=4)
