"""Tests for the write-ahead journal."""

import json

import pytest

from repro.errors import SerializationError
from repro.harness.journal import Journal, read_journal


class TestJournal:
    def test_record_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.record("run_start", jobs=["a", "b"], parallel=1)
            journal.record("job_start", job="a", attempt=1)
        records = read_journal(path)
        assert [r["event"] for r in records] == ["run_start", "job_start"]
        assert records[0]["jobs"] == ["a", "b"]
        assert records[1]["attempt"] == 1

    def test_records_hit_disk_immediately(self, tmp_path):
        # WAL property: the record is readable before close().
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.record("job_start", job="a", attempt=1)
        assert read_journal(path) == [
            {"event": "job_start", "job": "a", "attempt": 1}
        ]
        journal.close()

    def test_append_across_reopens(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.record("run_start")
        with Journal(path) as journal:  # a resumed run appends
            journal.record("run_start", resume=True)
        assert len(read_journal(path)) == 2

    def test_truncated_tail_is_dropped(self, tmp_path):
        # SIGKILL mid-append leaves a partial final line; replay must
        # keep everything before it.
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.record("run_start")
            journal.record("job_start", job="a", attempt=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "job_succ')  # the crash signature
        records = read_journal(path)
        assert [r["event"] for r in records] == ["run_start", "job_start"]

    def test_truncation_at_every_byte_of_last_record(self, tmp_path):
        # Crash-mid-append can cut the tail at *any* byte — including
        # inside a multi-byte UTF-8 sequence (the non-ASCII error text
        # below).  Every prefix must read as a clean two-record journal,
        # never as corruption.
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.record("run_start", jobs=["a"])
            journal.record("job_start", job="a", attempt=1)
            journal.record("job_retry", job="a", attempt=1,
                           error="café über résumé — ¡kaboom! ✂")
        full = path.read_bytes()
        lines = full.splitlines(keepends=True)
        prefix = b"".join(lines[:-1])
        last = lines[-1]
        for cut in range(len(last)):
            path.write_bytes(prefix + last[:cut])
            records = read_journal(path)
            events = [r["event"] for r in records]
            if cut == len(last) - 1:
                # Only the newline is missing: the record is complete
                # and keeping it is correct.
                assert events == ["run_start", "job_start", "job_retry"]
            else:
                assert events == ["run_start", "job_start"], (
                    f"truncation at byte {cut} of the last record"
                )
        # The intact journal still reads all three.
        path.write_bytes(full)
        assert len(read_journal(path)) == 3

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = json.dumps({"event": "run_start"})
        path.write_text(f"{good}\nGARBAGE NOT JSON\n{good}\n")
        with pytest.raises(SerializationError, match="journal line 2"):
            read_journal(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = json.dumps({"event": "run_start"})
        path.write_text(f"{good}\n\n{good}\n")
        assert len(read_journal(path)) == 2
