"""Interrupt safety, end to end: kill a real suite run, resume it.

The harness' crash-safety contract: a suite run killed at an arbitrary
instant — ``SIGKILL``, which no handler can intercept — leaves a run
directory from which ``--resume`` completes the suite, and the final
``summary.md`` plus every artifact is *byte-identical* to an
uninterrupted run at the same seed/scale.  That is only true if the
journal is write-ahead (fsynced before the supervisor acts), artifact
writes are atomic, and payload merging ignores completion order — so
this test pins all three at once.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.journal import read_journal

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

# fig2 finishes fast (journals a success early); headline is slow enough
# (~2 s simulated work + spawn overhead) to be killed mid-job reliably.
JOBS = ("fig2", "headline")
TIME_SCALE = "0.05"
DEADLINE_S = 120.0


def suite_cmd(run_dir, *extra):
    return [
        sys.executable, "-m", "repro.experiments.suite",
        "--time-scale", TIME_SCALE, "--jobs", *JOBS,
        "--run-dir", str(run_dir), "--timeout", "60", *extra,
    ]


def suite_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def wait_for_journal(run_dir, predicate, deadline_s=DEADLINE_S):
    """Poll the journal until ``predicate(records)`` holds."""
    journal = os.path.join(str(run_dir), "journal.jsonl")
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        if os.path.exists(journal):
            try:
                records = read_journal(journal)
            except Exception:
                records = []
            if predicate(records):
                return records
        time.sleep(0.01)
    raise AssertionError("journal never reached the awaited state")


def read_tree(run_dir):
    """``summary.md`` and artifact bytes, the resume-identity fingerprint."""
    out = {"summary.md": (run_dir / "summary.md").read_bytes()}
    artifact_dir = run_dir / "artifacts"
    for name in sorted(os.listdir(artifact_dir)):
        if name.endswith(".json"):
            out[f"artifacts/{name}"] = (artifact_dir / name).read_bytes()
    return out


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """An uninterrupted suite run: the byte-identity reference."""
    run_dir = tmp_path_factory.mktemp("reference")
    proc = subprocess.run(suite_cmd(run_dir), env=suite_env(),
                          capture_output=True, text=True, timeout=DEADLINE_S)
    assert proc.returncode == 0, proc.stderr
    return run_dir


class TestKillAndResume:
    def test_sigkill_midjob_then_resume_is_byte_identical(
            self, tmp_path, reference_run):
        run_dir = tmp_path / "victim"
        proc = subprocess.Popen(suite_cmd(run_dir), env=suite_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            # Kill only once fig2 is journaled complete AND headline has
            # started — i.e. genuinely mid-job, with work worth keeping.
            def mid_run(records):
                done = {r["job"] for r in records
                        if r["event"] == "job_success"}
                started = {r["job"] for r in records
                           if r["event"] == "job_start"}
                return "fig2" in done and "headline" in started - done

            wait_for_journal(run_dir, mid_run)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        assert not (run_dir / "summary.md").exists()  # died before the ledger

        resumed = subprocess.run(suite_cmd(run_dir, "--resume"),
                                 env=suite_env(), capture_output=True,
                                 text=True, timeout=DEADLINE_S)
        assert resumed.returncode == 0, resumed.stderr

        # fig2's completed work was reused, not redone ...
        records = read_journal(run_dir / "journal.jsonl")
        assert any(r["event"] == "job_skipped" and r["job"] == "fig2"
                   and r["reason"] == "resumed" for r in records)
        assert "resumed" in resumed.stdout
        # ... and the on-disk result is indistinguishable from a clean run.
        assert read_tree(run_dir) == read_tree(reference_run)

    def test_sigterm_finalizes_journal_and_resume_completes(
            self, tmp_path, reference_run):
        run_dir = tmp_path / "terminated"
        proc = subprocess.Popen(suite_cmd(run_dir), env=suite_env(),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.DEVNULL, text=True)
        try:
            wait_for_journal(
                run_dir,
                lambda recs: any(r["event"] == "job_start" for r in recs),
            )
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=DEADLINE_S)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        # The SIGTERM handler finalizes: exit 130, journal closed cleanly.
        assert proc.returncode == 130
        events = [r["event"] for r in read_journal(run_dir / "journal.jsonl")]
        assert "run_interrupted" in events
        assert events[-1] == "run_end"

        resumed = subprocess.run(suite_cmd(run_dir, "--resume"),
                                 env=suite_env(), capture_output=True,
                                 text=True, timeout=DEADLINE_S)
        assert resumed.returncode == 0, resumed.stderr
        assert read_tree(run_dir) == read_tree(reference_run)
