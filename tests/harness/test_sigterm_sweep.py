"""SIGTERM coverage for the ``sweep`` CLI harness path (satellite of
the service PR; complements the suite-level SIGKILL/SIGTERM tests).

Contract under test: when a supervised ``greengpu sweep --run-dir`` run
receives SIGTERM, the supervisor (a) kills and reaps its in-flight
spawned workers, (b) finalizes the journal — ``run_interrupted`` is
recorded and ``run_end`` is the last record, i.e. the file is flushed,
not half-written — and (c) exits with the conventional nonzero 130.
A follow-up ``--resume`` must then complete the sweep reusing every
journaled success.
"""

import os
import signal
import subprocess
import sys
import time

from repro.harness.journal import read_journal

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")
DEADLINE_S = 120.0


def sweep_cmd(run_dir, *extra):
    return [
        sys.executable, "-m", "repro.cli", "sweep",
        "--workload", "kmeans", "--time-scale", "0.05",
        "--step", "0.3", "--max-ratio", "0.9",
        "--run-dir", str(run_dir), "--parallel", "2", *extra,
    ]


def sweep_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.abspath(SRC) + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def wait_for_journal(run_dir, predicate, deadline_s=DEADLINE_S):
    journal = os.path.join(str(run_dir), "journal.jsonl")
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        if os.path.exists(journal):
            try:
                records = read_journal(journal)
            except Exception:
                records = []
            if predicate(records):
                return records
        time.sleep(0.01)
    raise AssertionError("journal never reached the awaited state")


class TestSweepSigterm:
    def test_sigterm_flushes_journal_and_exits_130(self, tmp_path):
        run_dir = tmp_path / "sweep"
        proc = subprocess.Popen(sweep_cmd(run_dir), env=sweep_env(),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        try:
            wait_for_journal(
                run_dir,
                lambda recs: any(r["event"] == "job_start" for r in recs),
            )
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=DEADLINE_S)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 130, (stdout, stderr)
        assert "interrupted" in stderr

        # The journal was finalized, not abandoned: interruption is
        # recorded and run_end is the last (complete) record.
        records = read_journal(run_dir / "journal.jsonl")
        events = [r["event"] for r in records]
        assert "run_interrupted" in events
        assert events[-1] == "run_end"
        end = records[-1]
        assert end["interrupted"] is True

        # Workers were killed and reaped by the supervisor: in-flight
        # jobs have starts but no successes, and no stray artifact tmp
        # files were left mid-write.
        artifact_dir = run_dir / "artifacts"
        if artifact_dir.exists():
            assert not [n for n in os.listdir(artifact_dir)
                        if n.endswith(".tmp")]

        # --resume completes the sweep and reuses journaled successes.
        done_before = {r["job"] for r in records
                       if r["event"] == "job_success"}
        resumed = subprocess.run(sweep_cmd(run_dir, "--resume"),
                                 env=sweep_env(), capture_output=True,
                                 text=True, timeout=DEADLINE_S)
        assert resumed.returncode == 0, resumed.stderr
        records = read_journal(run_dir / "journal.jsonl")
        skipped = {r["job"] for r in records
                   if r["event"] == "job_skipped"
                   and r.get("reason") == "resumed"}
        assert done_before <= skipped
        assert "energy minimum" in resumed.stdout
