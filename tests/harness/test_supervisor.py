"""Tests for the supervised job harness.

Cheap paths (success, retry, quarantine, DAG, resume) run inline —
same scheduler, no process overhead.  The isolation-specific behaviors
(timeout kill, crash containment, parallel fan-out) use real spawn
workers and are kept to a handful of processes so the suite stays fast.
"""

import pytest

from repro.errors import HarnessError
from repro.faults.retry import RetryPolicy
from repro.harness.job import JobSpec, JobState, validate_dag
from repro.harness.journal import JOURNAL_NAME, read_journal
from repro.harness.supervisor import run_jobs
from repro.harness.worker import read_artifact, resolve_target

TESTJOBS = "repro.harness._testjobs"

fast_retry = RetryPolicy(max_attempts=2, base_backoff_s=0.01, max_backoff_s=0.02)
one_shot = RetryPolicy(max_attempts=1)


def ok_spec(name="a", value=1, **kw):
    return JobSpec(name=name, target=f"{TESTJOBS}:ok",
                   kwargs={"value": value}, **kw)


def boom_spec(name="bad", retry=one_shot, **kw):
    return JobSpec(name=name, target=f"{TESTJOBS}:boom",
                   kwargs={"message": f"{name} exploded"}, retry=retry, **kw)


class TestSpecValidation:
    def test_bad_name_rejected(self):
        with pytest.raises(HarnessError, match="filesystem-safe"):
            JobSpec(name="../evil", target="m:f")

    def test_bad_target_rejected(self):
        with pytest.raises(HarnessError, match="module:function"):
            JobSpec(name="a", target="no_colon_here")

    def test_bad_timeout_rejected(self):
        with pytest.raises(HarnessError, match="timeout"):
            JobSpec(name="a", target="m:f", timeout_s=0.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(HarnessError, match="duplicate"):
            validate_dag([ok_spec("a"), ok_spec("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(HarnessError, match="unknown job"):
            validate_dag([JobSpec(name="a", target="m:f", depends_on=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(HarnessError, match="cycle"):
            validate_dag([
                JobSpec(name="a", target="m:f", depends_on=("b",)),
                JobSpec(name="b", target="m:f", depends_on=("a",)),
            ])

    def test_unresolvable_target_quarantines(self, tmp_path):
        spec = JobSpec(name="a", target="repro.harness._testjobs:no_such",
                       retry=one_shot)
        result = run_jobs([spec], tmp_path, isolate=False)
        assert result.outcomes["a"].state is JobState.QUARANTINED
        assert "callable" in result.outcomes["a"].error

    def test_resolve_target(self):
        fn = resolve_target(f"{TESTJOBS}:ok")
        assert fn(value=9) == {"value": 9}


class TestInlineRuns:
    def test_success_writes_artifact_and_journal(self, tmp_path):
        result = run_jobs([ok_spec("a", value=5)], tmp_path, isolate=False)
        outcome = result.outcomes["a"]
        assert outcome.state is JobState.SUCCEEDED
        assert outcome.payload == {"value": 5}
        assert read_artifact(outcome.artifact_path) == {"value": 5}
        events = [r["event"] for r in read_journal(tmp_path / JOURNAL_NAME)]
        assert events == ["run_start", "job_start", "job_success", "run_end"]

    def test_retry_then_success(self, tmp_path):
        spec = JobSpec(
            name="flaky", target=f"{TESTJOBS}:flaky",
            kwargs={"state_path": str(tmp_path / "count"), "fail_times": 1},
            retry=fast_retry,
        )
        result = run_jobs([spec], tmp_path, isolate=False)
        assert result.outcomes["flaky"].state is JobState.SUCCEEDED
        assert result.outcomes["flaky"].attempts == 2
        assert result.report.retries == 1
        events = [r["event"] for r in read_journal(tmp_path / JOURNAL_NAME)]
        assert "job_retry" in events

    def test_circuit_breaker_quarantines_and_run_continues(self, tmp_path):
        specs = [boom_spec("bad", retry=fast_retry), ok_spec("good", value=3)]
        result = run_jobs(specs, tmp_path, isolate=False)
        assert result.outcomes["bad"].state is JobState.QUARANTINED
        assert result.outcomes["good"].state is JobState.SUCCEEDED
        assert result.report.quarantined == 1
        assert result.report.retries == 1  # one retry before the breaker trips
        assert "bad exploded" in result.outcomes["bad"].error
        assert not result.report.ok
        assert result.payloads == {"good": {"value": 3}}

    def test_dependency_order_and_cascade_skip(self, tmp_path):
        specs = [
            boom_spec("root"),
            JobSpec(name="child", target=f"{TESTJOBS}:ok",
                    depends_on=("root",)),
            ok_spec("free", value=8),
        ]
        result = run_jobs(specs, tmp_path, isolate=False)
        assert result.outcomes["child"].state is JobState.SKIPPED_DEPENDENCY
        assert "root" in result.outcomes["child"].error
        assert result.outcomes["free"].state is JobState.SUCCEEDED
        assert result.report.dep_skipped == 1

    def test_dependent_runs_after_its_dependency(self, tmp_path):
        specs = [
            JobSpec(name="after", target=f"{TESTJOBS}:ok",
                    kwargs={"value": 2}, depends_on=("before",)),
            ok_spec("before", value=1),
        ]
        result = run_jobs(specs, tmp_path, isolate=False)
        assert all(o.state is JobState.SUCCEEDED
                   for o in result.outcomes.values())
        records = read_journal(tmp_path / JOURNAL_NAME)
        starts = [r["job"] for r in records if r["event"] == "job_start"]
        assert starts == ["before", "after"]

    def test_outcomes_keep_declaration_order(self, tmp_path):
        specs = [ok_spec("z"), ok_spec("a"), ok_spec("m")]
        result = run_jobs(specs, tmp_path, isolate=False)
        assert list(result.outcomes) == ["z", "a", "m"]


class TestResume:
    def test_resume_skips_verified_jobs(self, tmp_path):
        first = run_jobs([ok_spec("a", value=5), ok_spec("b", value=6)],
                         tmp_path, isolate=False)
        assert first.report.succeeded == 2
        second = run_jobs([ok_spec("a", value=5), ok_spec("b", value=6)],
                          tmp_path, isolate=False, resume=True)
        assert second.report.resumed == 2
        assert second.report.succeeded == 0
        assert second.outcomes["a"].state is JobState.SKIPPED_RESUMED
        assert second.payloads == {"a": {"value": 5}, "b": {"value": 6}}

    def test_resume_reruns_quarantined_jobs(self, tmp_path):
        state = tmp_path / "count"
        spec = JobSpec(
            name="flaky", target=f"{TESTJOBS}:flaky",
            kwargs={"state_path": str(state), "fail_times": 1},
            retry=one_shot,  # first run: single attempt, quarantined
        )
        first = run_jobs([spec], tmp_path, isolate=False)
        assert first.outcomes["flaky"].state is JobState.QUARANTINED
        second = run_jobs([spec], tmp_path, isolate=False, resume=True)
        assert second.outcomes["flaky"].state is JobState.SUCCEEDED

    def test_resume_reruns_on_tampered_artifact(self, tmp_path):
        first = run_jobs([ok_spec("a", value=5)], tmp_path, isolate=False)
        path = first.outcomes["a"].artifact_path
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n")  # hash no longer matches the journal
        second = run_jobs([ok_spec("a", value=5)], tmp_path,
                          isolate=False, resume=True)
        assert second.outcomes["a"].state is JobState.SUCCEEDED
        assert second.report.resumed == 0

    def test_resume_on_fresh_dir_is_a_plain_run(self, tmp_path):
        result = run_jobs([ok_spec("a")], tmp_path, isolate=False, resume=True)
        assert result.outcomes["a"].state is JobState.SUCCEEDED


class TestIsolated:
    """Spawn-worker behaviors: crash containment, timeout kill, fan-out."""

    def test_timeout_killed_then_retried_to_success(self, tmp_path):
        # First attempt hangs and is killed on its deadline; the retry
        # (fresh process, counter file advanced) completes.
        spec = JobSpec(
            name="hang", target=f"{TESTJOBS}:hang_then_ok",
            kwargs={"state_path": str(tmp_path / "count"), "seconds": 60.0,
                    "value": 3},
            timeout_s=1.0,
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.01),
        )
        result = run_jobs([spec], tmp_path, isolate=True)
        outcome = result.outcomes["hang"]
        assert outcome.state is JobState.SUCCEEDED
        assert outcome.payload == {"value": 3, "attempt": 2}
        assert result.report.timeouts == 1
        assert result.report.retries == 1
        records = read_journal(tmp_path / JOURNAL_NAME)
        retry = next(r for r in records if r["event"] == "job_retry")
        assert "timeout" in retry["error"]

    def test_hung_job_quarantined_without_sinking_the_run(self, tmp_path):
        specs = [
            JobSpec(name="stuck", target=f"{TESTJOBS}:sleep_then_ok",
                    kwargs={"seconds": 60.0}, timeout_s=0.5, retry=one_shot),
            ok_spec("alive", value=4),
        ]
        result = run_jobs(specs, tmp_path, isolate=True, parallel=2)
        assert result.outcomes["stuck"].state is JobState.QUARANTINED
        assert "timeout" in result.outcomes["stuck"].error
        assert result.outcomes["alive"].state is JobState.SUCCEEDED

    def test_crashing_worker_reports_its_traceback(self, tmp_path):
        result = run_jobs([boom_spec("bad")], tmp_path, isolate=True)
        outcome = result.outcomes["bad"]
        assert outcome.state is JobState.QUARANTINED
        assert "RuntimeError" in outcome.error
        assert "bad exploded" in outcome.error

    def test_parallel_fanout_completes_everything(self, tmp_path):
        specs = [ok_spec(f"job{i}", value=i) for i in range(4)]
        result = run_jobs(specs, tmp_path, isolate=True, parallel=2)
        assert result.report.succeeded == 4
        assert result.payloads == {f"job{i}": {"value": i} for i in range(4)}


class TestReport:
    def test_summary_line_and_lines(self, tmp_path):
        result = run_jobs([ok_spec("a")], tmp_path, isolate=False)
        line = result.report.summary_line()
        assert line.startswith("harness: 1 ok")
        lines = result.report.as_lines()
        assert any(l.startswith("jobs") for l in lines)
        assert result.report.to_markdown().startswith("# Run health")

    def test_states_and_errors_exposed(self, tmp_path):
        result = run_jobs([boom_spec("bad"), ok_spec("good")],
                          tmp_path, isolate=False)
        assert result.report.states == {"bad": "quarantined",
                                        "good": "succeeded"}
        assert "bad" in result.report.errors
