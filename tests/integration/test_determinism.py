"""Determinism: identical runs must produce identical results.

The whole simulator is deterministic by construction (no wall-clock, no
RNG in the control path); these tests pin that property, which the
workflow-style experiments rely on for reproducibility.
"""

import numpy as np
import pytest

from repro.core.policies import GreenGpuPolicy, RodiniaDefaultPolicy
from repro.runtime.executor import run_workload
from tests.conftest import fast_workload


def _run_once(policy_factory, name="kmeans", n=5):
    from repro.core.config import GreenGpuConfig
    from repro.runtime.executor import ExecutorOptions
    from tests.conftest import FAST_SCALE

    cfg = GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE, ondemand_interval_s=0.1 * FAST_SCALE
    )
    return run_workload(
        fast_workload(name),
        policy_factory(cfg),
        n_iterations=n,
        options=ExecutorOptions(repartition_overhead_s=0.5 * FAST_SCALE),
    )


class TestBitwiseReproducibility:
    def test_static_runs_identical(self):
        a = _run_once(lambda cfg: RodiniaDefaultPolicy())
        b = _run_once(lambda cfg: RodiniaDefaultPolicy())
        assert a.total_energy_j == b.total_energy_j
        assert a.total_s == b.total_s

    def test_controlled_runs_identical(self):
        a = _run_once(lambda cfg: GreenGpuPolicy(config=cfg))
        b = _run_once(lambda cfg: GreenGpuPolicy(config=cfg))
        assert a.total_energy_j == b.total_energy_j
        assert np.array_equal(a.ratios(), b.ratios())
        assert np.array_equal(a.iteration_energies(), b.iteration_energies())

    def test_traces_identical(self):
        a = _run_once(lambda cfg: GreenGpuPolicy(config=cfg))
        b = _run_once(lambda cfg: GreenGpuPolicy(config=cfg))
        for channel in ("gpu_f_core", "gpu_f_mem"):
            assert np.array_equal(a.traces[channel].values, b.traces[channel].values)

    def test_workload_kernels_deterministic(self):
        from repro.workloads import kmeans

        pa = kmeans.generate_problem(seed=42)
        pb = kmeans.generate_problem(seed=42)
        la, ca = kmeans.run_lloyd(pa, 3, r=0.25)
        lb, cb = kmeans.run_lloyd(pb, 3, r=0.25)
        assert np.array_equal(la, lb)
        assert np.array_equal(ca, cb)
