"""End-to-end integration: full policies on full workloads.

These tests run the complete stack — testbed, monitors, two-tier
controller, executor, meters — and assert the paper's headline orderings
hold for every Table II workload, not just the figures' subjects.
"""

import pytest

from repro.core.policies import (
    DivisionOnlyPolicy,
    FrequencyScalingOnlyPolicy,
    GreenGpuPolicy,
    RodiniaDefaultPolicy,
)
from repro.runtime.executor import run_workload
from repro.workloads.characteristics import workload_names
from tests.conftest import fast_workload


@pytest.fixture(scope="module")
def comparisons(fast_config, fast_options):
    """GreenGPU vs default for kmeans and hotspot at fast scale."""
    out = {}
    for name in ("kmeans", "hotspot"):
        w = fast_workload(name)
        out[name] = {
            "default": run_workload(w, RodiniaDefaultPolicy(), n_iterations=8,
                                    options=fast_options),
            "green": run_workload(w, GreenGpuPolicy(config=fast_config),
                                  n_iterations=8, options=fast_options),
            "division": run_workload(w, DivisionOnlyPolicy(config=fast_config),
                                     n_iterations=8, options=fast_options),
            "scaling": run_workload(w, FrequencyScalingOnlyPolicy(config=fast_config),
                                    n_iterations=8, options=fast_options),
        }
    return out


# conftest fixtures are function-scoped; redefine at module scope here.
@pytest.fixture(scope="module")
def fast_config():
    from repro.core.config import GreenGpuConfig
    from tests.conftest import FAST_SCALE

    return GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE, ondemand_interval_s=0.1 * FAST_SCALE
    )


@pytest.fixture(scope="module")
def fast_options():
    from repro.runtime.executor import ExecutorOptions
    from tests.conftest import FAST_SCALE

    return ExecutorOptions(repartition_overhead_s=0.5 * FAST_SCALE)


class TestHeadlineOrdering:
    def test_greengpu_saves_vs_default(self, comparisons):
        for name, runs in comparisons.items():
            saving = runs["green"].energy_saving_vs(runs["default"])
            assert saving > 0.05, name

    def test_greengpu_beats_both_single_tiers(self, comparisons):
        for name, runs in comparisons.items():
            assert runs["green"].total_energy_j <= runs["division"].total_energy_j
            assert runs["green"].total_energy_j <= runs["scaling"].total_energy_j

    def test_division_beats_scaling_on_divisible_workloads(self, comparisons):
        """§VII-C: division contributes more than frequency scaling."""
        for name, runs in comparisons.items():
            assert runs["division"].total_energy_j < runs["scaling"].total_energy_j

    def test_kmeans_converges_to_20_80(self, comparisons):
        assert comparisons["kmeans"]["green"].final_ratio == pytest.approx(0.20)

    def test_hotspot_converges_to_50_50(self, comparisons):
        assert comparisons["hotspot"]["green"].final_ratio == pytest.approx(0.50)


class TestAllWorkloadsRunnable:
    @pytest.mark.parametrize("name", workload_names())
    def test_scaling_only_never_catastrophic(self, name, fast_config):
        """Tier 2 must never blow up time or energy on any workload."""
        w = fast_workload(name)
        from repro.core.policies import BestPerformancePolicy

        base = run_workload(w, BestPerformancePolicy(), n_iterations=2)
        scaled = run_workload(
            w, FrequencyScalingOnlyPolicy(config=fast_config), n_iterations=2
        )
        assert scaled.slowdown_vs(base) < 0.15
        assert scaled.gpu_energy_saving_vs(base) > -0.05

    @pytest.mark.parametrize("name", workload_names())
    def test_greengpu_runs_on_everything(self, name, fast_config, fast_options):
        w = fast_workload(name)
        result = run_workload(
            w, GreenGpuPolicy(config=fast_config), n_iterations=3, options=fast_options
        )
        assert result.n_iterations == 3
        assert result.total_energy_j > 0.0
