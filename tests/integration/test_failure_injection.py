"""Failure injection: the stack must fail loudly, not silently.

A control framework that silently mis-measures energy is worse than one
that crashes; these tests pin the guard rails."""

import pytest

from repro.core.controller import GreenGpuController, TierMode
from repro.core.policies import RodiniaDefaultPolicy, StaticPolicy
from repro.errors import ReproError, SimulationError
from repro.runtime.executor import ExecutorOptions, HeteroExecutor, run_workload
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.platform import make_testbed
from tests.conftest import fast_workload


class TestTimeoutGuards:
    def test_iteration_timeout_fires(self, fast_kmeans):
        """A pathologically short timeout must raise, not hang."""
        with pytest.raises(SimulationError, match="exceeded"):
            run_workload(
                fast_kmeans,
                RodiniaDefaultPolicy(),
                n_iterations=1,
                options=ExecutorOptions(iteration_timeout_s=0.001),
            )

    def test_run_until_idle_timeout_fires(self, testbed):
        testbed.gpu.submit_kernel(
            KernelActivity([PhaseDemand(flops=1e20, bytes=0.0)])
        )
        with pytest.raises(SimulationError, match="busy"):
            testbed.run_until_devices_idle(timeout_s=0.5)


class TestMidRunCancellation:
    def test_cancelled_gpu_work_leaves_consistent_state(self, testbed):
        testbed.gpu.set_peak()
        testbed.gpu.submit_kernel(
            KernelActivity([PhaseDemand(flops=1e12, bytes=1e10, stall_s=1.0)])
        )
        testbed.run_for(0.5)
        testbed.gpu.cancel_all()
        assert not testbed.gpu.busy
        # The system keeps simulating fine afterwards.
        testbed.run_for(1.0)
        assert testbed.now == pytest.approx(1.5)


class TestControllerMisuse:
    def test_detached_controller_never_touches_devices(self, testbed, fast_config):
        ctrl = GreenGpuController(TierMode.SCALING_ONLY, fast_config)
        ctrl.attach(testbed)
        ctrl.detach()
        testbed.gpu.set_peak()
        testbed.run_for(1.0)
        assert testbed.gpu.core_level == 0  # nothing throttled it

    def test_iteration_end_without_division_is_safe(self, fast_config):
        ctrl = GreenGpuController(TierMode.NONE, fast_config, initial_ratio=0.3)
        assert ctrl.on_iteration_end(1.0, 2.0) == 0.3


class TestExceptionHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        from repro import errors

        for name in ("ConfigError", "SimulationError", "FrequencyError",
                      "WorkloadError", "PartitionError", "MeterError",
                      "ConvergenceError"):
            assert issubclass(getattr(errors, name), ReproError)

    def test_policy_misuse_raises_repro_error(self, testbed):
        with pytest.raises(ReproError):
            StaticPolicy(99, 0).apply_initial_state(testbed)


class TestExecutorRobustness:
    def test_executor_survives_zero_ratio_forever(self, fast_kmeans, fast_config):
        """All-GPU with division enabled: the divider probes the CPU and
        must not deadlock at the boundary."""
        from repro.core.policies import DivisionOnlyPolicy

        result = run_workload(
            fast_kmeans,
            DivisionOnlyPolicy(initial_ratio=0.0, config=fast_config),
            n_iterations=4,
            options=ExecutorOptions(repartition_overhead_s=0.0),
        )
        assert result.n_iterations == 4

    def test_max_ratio_cap_respected(self, fast_kmeans, fast_config):
        from repro.core.policies import DivisionOnlyPolicy

        cfg = fast_config.with_(max_cpu_ratio=0.10, initial_cpu_ratio=0.10)
        result = run_workload(
            fast_kmeans,
            DivisionOnlyPolicy(config=cfg),
            n_iterations=3,
            options=ExecutorOptions(repartition_overhead_s=0.0),
        )
        assert all(m.r <= 0.10 + 1e-12 for m in result.iterations)
