"""Tests for the /proc/stat facade."""

import pytest

from repro.errors import SimulationError
from repro.monitors.cpustat import CpuStat
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.cpu import CpuDevice


class TestWindowedSampling:
    def test_idle_reads_zero(self, cpu_spec):
        cpu = CpuDevice(cpu_spec)
        stat = CpuStat(cpu)
        cpu.advance(1.0)
        assert stat.query().u == 0.0

    def test_spin_reads_full_utilization(self, cpu_spec):
        """The paper's §VII-A observation in monitor form."""
        cpu = CpuDevice(cpu_spec)
        stat = CpuStat(cpu)
        cpu.spin()
        cpu.advance(1.0)
        assert stat.query().u == 1.0

    def test_working_reads_full_utilization(self, cpu_spec):
        cpu = CpuDevice(cpu_spec)
        stat = CpuStat(cpu)
        cpu.submit_kernel(KernelActivity([PhaseDemand(cpu_spec.peak_compute_rate, 0.0)]))
        cpu.advance(0.5)
        assert stat.query().u == 1.0

    def test_mixed_window_fractional(self, cpu_spec):
        cpu = CpuDevice(cpu_spec)
        stat = CpuStat(cpu)
        cpu.spin()
        cpu.advance(1.0)
        cpu.stop_spin()
        cpu.advance(3.0)
        assert stat.query().u == pytest.approx(0.25)

    def test_sample_carries_pstate(self, cpu_spec):
        cpu = CpuDevice(cpu_spec)
        cpu.set_frequency(cpu_spec.ladder[2])
        stat = CpuStat(cpu)
        cpu.advance(1.0)
        assert stat.query().f == cpu_spec.ladder[2]

    def test_empty_window_raises(self, cpu_spec):
        with pytest.raises(SimulationError):
            CpuStat(CpuDevice(cpu_spec)).query()


class TestEdgeCases:
    def test_empty_window_raises_monitor_error(self, cpu_spec):
        """The zero-window crash is a MonitorError the controller can catch."""
        from repro.errors import MonitorError

        with pytest.raises(MonitorError):
            CpuStat(CpuDevice(cpu_spec)).query()

    def test_utilization_never_exceeds_one(self, cpu_spec):
        cpu = CpuDevice(cpu_spec)
        stat = CpuStat(cpu)
        cpu.spin()
        cpu.submit_kernel(
            KernelActivity([PhaseDemand(cpu_spec.peak_compute_rate, 0.0)])
        )
        cpu.advance(1.0)
        assert stat.query().u <= 1.0

    def test_f_reports_pstate_at_query_time(self, cpu_spec):
        """A mid-window P-state change shows the *current* frequency."""
        cpu = CpuDevice(cpu_spec)
        stat = CpuStat(cpu)
        cpu.advance(0.5)
        cpu.set_frequency(cpu_spec.ladder[3])
        cpu.advance(0.5)
        assert stat.query().f == cpu_spec.ladder[3]
