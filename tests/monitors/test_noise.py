"""Tests for the noise-injecting monitor."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.monitors.noise import NoisyNvidiaSmi
from repro.sim.gpu import GpuDevice


def _advance(gpu, dt):
    """Advance a device by dt, stepping through its internal events."""
    remaining = dt
    while remaining > 1e-12:
        step = gpu.time_to_event()
        step = remaining if step is None else min(step, remaining)
        gpu.advance(step)
        remaining -= step


@pytest.fixture
def busy_gpu(gpu_spec):
    from repro.sim.activity import KernelActivity, PhaseDemand

    gpu = GpuDevice(gpu_spec)
    gpu.set_peak()
    stall = gpu_spec.roofline.stall_for_utilizations(0.6, 0.25)
    gpu.submit_kernel(KernelActivity([
        PhaseDemand(
            flops=0.6 * 100.0 * gpu_spec.peak_compute_rate,
            bytes=0.25 * 100.0 * gpu_spec.peak_bandwidth,
            stall_s=stall * 100.0,
        )
    ]))
    return gpu


class TestNoisyMonitor:
    def test_zero_amplitude_is_transparent(self, busy_gpu):
        noisy = NoisyNvidiaSmi(busy_gpu, amplitude=0.0)
        _advance(busy_gpu, 5.0)
        sample = noisy.query()
        assert sample.u_core == pytest.approx(0.6, rel=0.05)

    def test_noise_bounded_by_amplitude(self, busy_gpu):
        noisy = NoisyNvidiaSmi(busy_gpu, amplitude=0.05, seed=3)
        readings = []
        for _ in range(50):
            _advance(busy_gpu, 1.0)
            readings.append(noisy.query().u_core)
        readings = np.array(readings)
        assert np.all(np.abs(readings - 0.6) <= 0.05 + 0.01)

    def test_readings_clamped_to_unit_interval(self, gpu_spec):
        gpu = GpuDevice(gpu_spec)  # idle: true utilization 0
        noisy = NoisyNvidiaSmi(gpu, amplitude=0.5, seed=1)
        for _ in range(20):
            _advance(gpu, 1.0)
            sample = noisy.query()
            assert 0.0 <= sample.u_core <= 1.0
            assert 0.0 <= sample.u_mem <= 1.0

    def test_deterministic_by_seed(self, busy_gpu, gpu_spec):
        from repro.sim.activity import KernelActivity, PhaseDemand

        def trace(seed):
            gpu = GpuDevice(gpu_spec)
            noisy = NoisyNvidiaSmi(gpu, amplitude=0.1, seed=seed)
            out = []
            for _ in range(10):
                _advance(gpu, 1.0)
                out.append(noisy.query().u_core)
            return out

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)

    def test_clocks_passthrough(self, busy_gpu):
        noisy = NoisyNvidiaSmi(busy_gpu, amplitude=0.1)
        assert noisy.peek_clocks() == (busy_gpu.f_core, busy_gpu.f_mem)

    def test_query_counter(self, busy_gpu):
        noisy = NoisyNvidiaSmi(busy_gpu, amplitude=0.1)
        _advance(busy_gpu, 1.0)
        noisy.query()
        assert noisy.queries == 1

    def test_rejects_bad_amplitude(self, busy_gpu):
        with pytest.raises(ConfigError):
            NoisyNvidiaSmi(busy_gpu, amplitude=-0.1)
        with pytest.raises(ConfigError):
            NoisyNvidiaSmi(busy_gpu, amplitude=1.5)


class TestNoiseEdgeCases:
    def test_amplitude_one_is_accepted_and_stays_clamped(self, busy_gpu):
        noisy = NoisyNvidiaSmi(busy_gpu, amplitude=1.0, seed=2)
        for _ in range(20):
            _advance(busy_gpu, 1.0)
            sample = noisy.query()
            assert 0.0 <= sample.u_core <= 1.0
            assert 0.0 <= sample.u_mem <= 1.0

    def test_zero_amplitude_matches_clean_monitor_exactly(self, gpu_spec):
        from repro.monitors.nvsmi import NvidiaSmi
        from repro.sim.gpu import GpuDevice

        gpu = GpuDevice(gpu_spec)
        clean, noisy = NvidiaSmi(gpu), NoisyNvidiaSmi(gpu, amplitude=0.0, seed=9)
        for _ in range(5):
            _advance(gpu, 1.0)
            a, b = clean.query(), noisy.query()
            assert (a.u_core, a.u_mem) == (b.u_core, b.u_mem)

    def test_empty_window_raises_monitor_error(self, busy_gpu):
        from repro.errors import MonitorError

        noisy = NoisyNvidiaSmi(busy_gpu, amplitude=0.1)
        with pytest.raises(MonitorError):
            noisy.query()  # zero elapsed time since construction
