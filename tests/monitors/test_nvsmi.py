"""Tests for the nvidia-smi facade."""

import pytest

from repro.errors import SimulationError
from repro.monitors.nvsmi import NvidiaSmi
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.gpu import GpuDevice


def _kernel(spec, seconds, u_core, u_mem):
    stall = spec.roofline.stall_for_utilizations(u_core, u_mem)
    return KernelActivity([
        PhaseDemand(
            flops=u_core * seconds * spec.peak_compute_rate,
            bytes=u_mem * seconds * spec.peak_bandwidth,
            stall_s=stall * seconds,
        )
    ])


class TestWindowedSampling:
    def test_idle_window_reads_zero(self, gpu_spec):
        gpu = GpuDevice(gpu_spec)
        smi = NvidiaSmi(gpu)
        gpu.advance(1.0)
        sample = smi.query()
        assert sample.u_core == 0.0 and sample.u_mem == 0.0
        assert sample.window_s == pytest.approx(1.0)

    def test_busy_window_reads_target_utilizations(self, gpu_spec):
        gpu = GpuDevice(gpu_spec)
        gpu.set_peak()
        smi = NvidiaSmi(gpu)
        gpu.submit_kernel(_kernel(gpu_spec, 10.0, 0.6, 0.25))
        while gpu.busy:
            gpu.advance(gpu.time_to_event())
        sample = smi.query()
        assert sample.u_core == pytest.approx(0.6, rel=0.01)
        assert sample.u_mem == pytest.approx(0.25, rel=0.01)

    def test_windows_are_independent(self, gpu_spec):
        """Busy first window, idle second window."""
        gpu = GpuDevice(gpu_spec)
        gpu.set_peak()
        smi = NvidiaSmi(gpu)
        gpu.submit_kernel(_kernel(gpu_spec, 2.0, 0.8, 0.2))
        while gpu.busy:
            gpu.advance(gpu.time_to_event())
        busy = smi.query()
        gpu.advance(2.0)
        idle = smi.query()
        assert busy.u_core > 0.7
        assert idle.u_core == 0.0

    def test_utilization_relative_to_current_clock(self, gpu_spec):
        """Throttling memory raises measured memory utilization — the
        feedback the WMA loss function relies on."""
        def measure(mem_level):
            gpu = GpuDevice(gpu_spec)
            gpu.set_levels(0, mem_level)
            smi = NvidiaSmi(gpu)
            gpu.submit_kernel(_kernel(gpu_spec, 5.0, 0.4, 0.4))
            while gpu.busy:
                gpu.advance(gpu.time_to_event())
            return smi.query().u_mem

        assert measure(3) > measure(0)

    def test_empty_window_raises(self, gpu_spec):
        smi = NvidiaSmi(GpuDevice(gpu_spec))
        with pytest.raises(SimulationError):
            smi.query()

    def test_sample_carries_current_clocks(self, gpu_spec):
        gpu = GpuDevice(gpu_spec)
        gpu.set_levels(1, 2)
        smi = NvidiaSmi(gpu)
        gpu.advance(1.0)
        sample = smi.query()
        assert sample.f_core == gpu_spec.core_ladder[1]
        assert sample.f_mem == gpu_spec.mem_ladder[2]

    def test_peek_clocks_does_not_consume_window(self, gpu_spec):
        gpu = GpuDevice(gpu_spec)
        smi = NvidiaSmi(gpu)
        gpu.advance(1.0)
        assert smi.peek_clocks() == (gpu.f_core, gpu.f_mem)
        assert smi.query().window_s == pytest.approx(1.0)
