"""Paired-oracle property tests: batch lane *i* ≡ scalar run *i*.

The lockstep batch engine (:mod:`repro.sim.batch`) is an optimized
re-expression of the scalar fast path, and its contract mirrors the
``step`` / ``_step_reference`` pairing: for every eligible request the
lane result must equal the scalar ``run_workload`` result **bit for
bit** — energies, times, division/frequency traces, iteration metrics,
health counters — not merely approximately.  ``result_to_dict`` equality
is the whole-surface bitwise comparison.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.serialize import result_to_dict
from repro.core.policies import StaticPolicy
from repro.errors import SimulationError
from repro.runtime.executor import run_workload
from repro.sim.batch import BatchRunRequest, batch_eligible, run_batch

WORKLOADS = ["kmeans", "hotspot", "nbody", "streamcluster"]
POLICIES = ["greengpu", "scaling-only", "division-only", "best-performance",
            "rodinia-default", "static"]


def _policy(name, time_scale, static_ratio, level):
    if name == "static":
        return StaticPolicy(level, level, ratio=static_ratio)
    from repro.cli import POLICY_FACTORIES
    from repro.experiments.common import scaled_config

    return POLICY_FACTORIES[name](scaled_config(time_scale))


def _request(workload, policy, static_ratio, level, n_iterations,
             time_scale, sync_spin=True):
    from repro.experiments.common import scaled_options, scaled_workload

    options = scaled_options(time_scale)
    if not sync_spin:
        options = dataclasses.replace(options, sync_spin=False)
    return BatchRunRequest(
        workload=scaled_workload(workload, time_scale),
        policy=_policy(policy, time_scale, static_ratio, level),
        n_iterations=n_iterations,
        options=options,
    )


def _scalar(request: BatchRunRequest):
    return run_workload(
        request.workload, request.policy,
        n_iterations=request.n_iterations, options=request.options,
    )


#: One lane's free parameters.  Ratios are raw floats (not a grid) so the
#: divider/partition math is exercised off the usual 0.05 lattice.
LANE = st.tuples(
    st.sampled_from(WORKLOADS),
    st.sampled_from(POLICIES),
    st.floats(0.0, 0.95),
    st.integers(0, 2),
    st.integers(1, 3),
)


class TestLaneEquivalence:
    @given(
        lanes=st.lists(LANE, min_size=1, max_size=4),
        time_scale=st.sampled_from([0.05, 0.1]),
        sync_spin=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_lane_matches_scalar_run(self, lanes, time_scale,
                                           sync_spin):
        requests = [
            _request(*lane, time_scale, sync_spin=sync_spin)
            for lane in lanes
        ]
        batch = run_batch(requests)
        assert len(batch) == len(requests)
        for request, result in zip(requests, batch):
            assert result.engine == "batch"
            # `engine` is execution provenance only — it must not leak
            # into the serialized surface, or batching would be visible
            # to the cache and the journal.
            assert result_to_dict(result) == result_to_dict(_scalar(request))


class TestLaneEquivalenceDeterministic:
    def test_mixed_heterogeneous_batch_multi_iteration(self):
        """One batch mixing workloads, policies, iteration counts, and
        sync-spin modes — lanes must not bleed into each other."""
        requests = [
            _request("kmeans", "greengpu", 0.0, 0, 4, 0.05),
            _request("hotspot", "static", 0.55, 1, 2, 0.05),
            _request("nbody", "division-only", 0.0, 0, 3, 0.05),
            _request("streamcluster", "rodinia-default", 0.0, 0, 1, 0.05),
            _request("kmeans", "greengpu", 0.0, 0, 2, 0.05,
                     sync_spin=False),
        ]
        for request, result in zip(requests, run_batch(requests)):
            assert result_to_dict(result) == result_to_dict(_scalar(request))

    def test_cpu_only_and_gpu_only_divisions(self):
        """r=1.0 empties the GPU queue; r=0.0 empties the CPU queue.
        Both degenerate head layouts must match the scalar engine."""
        requests = [
            _request("kmeans", "static", 0.0, 0, 2, 0.05),
            _request("kmeans", "static", 1.0, 0, 2, 0.05),
        ]
        for request, result in zip(requests, run_batch(requests)):
            assert result_to_dict(result) == result_to_dict(_scalar(request))

    def test_ineligible_workload_rejected(self):
        class _Opaque:
            name = "opaque"
            default_iterations = 1

        assert not batch_eligible(_Opaque())
        request = _request("kmeans", "static", 0.3, 0, 1, 0.05)
        bad = BatchRunRequest(workload=_Opaque(), policy=request.policy,
                              n_iterations=1, options=request.options)
        with pytest.raises(SimulationError):
            run_batch([bad])

    def test_faulted_policy_rejected(self):
        from repro.faults.injector import fault_profile

        request = _request("kmeans", "greengpu", 0.0, 0, 1, 0.05)
        faulted = BatchRunRequest(
            workload=request.workload,
            policy=request.policy.with_faults(fault_profile("light", seed=1)),
            n_iterations=1,
            options=request.options,
        )
        with pytest.raises(SimulationError):
            run_batch([faulted])

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            run_batch([])
