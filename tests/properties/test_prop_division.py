"""Property-based tests for the workload divider."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import GreenGpuConfig
from repro.core.division import WorkloadDivider

ratios = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)
speeds = st.floats(min_value=0.2, max_value=20.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def _drive(divider, cpu_speed, iterations):
    """Closed loop: iteration times derive from the current division."""
    for _ in range(iterations):
        r = divider.r
        divider.update(r * cpu_speed, (1.0 - r) * 1.0)
    return divider.r


class TestInvariant:
    @given(r0=ratios, data=st.data())
    @settings(max_examples=100)
    def test_ratio_always_within_bounds(self, r0, data):
        cfg = GreenGpuConfig()
        divider = WorkloadDivider(cfg, r0=r0)
        for _ in range(data.draw(st.integers(1, 20))):
            tc = data.draw(times)
            tg = data.draw(times)
            divider.update(tc, tg)
            assert cfg.min_cpu_ratio <= divider.r <= cfg.max_cpu_ratio

    @given(r0=ratios, tc=times, tg=times)
    def test_moves_at_most_one_step(self, r0, tc, tg):
        divider = WorkloadDivider(r0=r0)
        before = divider.r
        divider.update(tc, tg)
        assert abs(divider.r - before) <= divider.config.division_step + 1e-12

    @given(r0=ratios, tc=times, tg=times)
    def test_direction_matches_straggler(self, r0, tc, tg):
        """If the division moves at all, it moves away from the straggler."""
        divider = WorkloadDivider(r0=r0)
        before = divider.r
        decision = divider.update(tc, tg)
        if decision.moved:
            if tc > tg:
                assert decision.r_next < before
            else:
                assert decision.r_next > before


class TestClosedLoopConvergence:
    @given(r0=ratios, cpu_speed=speeds)
    @settings(max_examples=60, deadline=None)
    def test_settles_within_grid_walk(self, r0, cpu_speed):
        """From any start, the closed loop reaches a fixed point within
        the number of iterations needed to walk the whole grid, and stays
        there (no steady-state oscillation, thanks to the safeguard)."""
        divider = WorkloadDivider(r0=r0)
        _drive(divider, cpu_speed, 25)
        settled = divider.r
        _drive(divider, cpu_speed, 5)
        assert divider.r == settled

    @given(r0=ratios, cpu_speed=speeds)
    @settings(max_examples=60, deadline=None)
    def test_fixed_point_brackets_balance(self, r0, cpu_speed):
        """The settled ratio is within one step of the true equal-finish
        point r* = 1 / (1 + cpu_speed)."""
        divider = WorkloadDivider(r0=r0)
        settled = _drive(divider, cpu_speed, 30)
        r_star = 1.0 / (1.0 + cpu_speed)
        cfg = divider.config
        lo = max(cfg.min_cpu_ratio, min(r_star, cfg.max_cpu_ratio))
        assert abs(settled - lo) <= cfg.division_step + 1e-9

    @given(r0a=ratios, r0b=ratios, cpu_speed=speeds)
    @settings(max_examples=40, deadline=None)
    def test_convergence_independent_of_start(self, r0a, r0b, cpu_speed):
        """Paper §VII-B: the settled point does not depend on the initial
        ratio (up to the quantization pair around r*)."""
        a = _drive(WorkloadDivider(r0=r0a), cpu_speed, 40)
        b = _drive(WorkloadDivider(r0=r0b), cpu_speed, 40)
        # Off-grid starts walk misaligned 5 % grids, so two runs may park
        # on opposite sides of r*: at most two steps apart.
        assert abs(a - b) <= 0.1000001
