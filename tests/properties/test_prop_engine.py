"""Property-based tests for the clock and energy conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimClock
from repro.sim.meter import PowerMeter
from repro.sim.platform import make_testbed
from repro.sim.activity import KernelActivity, PhaseDemand


class TestClockProperties:
    @given(
        periods=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=5),
        horizon=st.floats(1.0, 50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_firing_counts_match_periods(self, periods, horizon):
        clock = SimClock()
        counters = [0] * len(periods)

        def make_cb(i):
            def cb(t):
                counters[i] += 1
            return cb

        for i, p in enumerate(periods):
            clock.every(p, make_cb(i))
        clock.advance_to(horizon)
        for count, period in zip(counters, periods):
            # Accumulated float deadlines may straddle an exact multiple
            # of the horizon by one firing either way.
            assert abs(count - horizon / period) <= 1.0

    @given(steps=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30))
    def test_time_is_sum_of_advances(self, steps):
        clock = SimClock()
        for dt in steps:
            clock.advance_by(dt)
        assert clock.now == pytest.approx(sum(steps), rel=1e-9, abs=1e-9)


class TestEnergyConservation:
    @given(chunks=st.lists(st.floats(0.01, 2.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_meter_energy_independent_of_step_granularity(self, chunks):
        """Splitting the same interval into arbitrary chunks integrates
        to the same energy (power is constant while idle)."""
        a = PowerMeter("a", [lambda: 123.0])
        b = PowerMeter("b", [lambda: 123.0])
        total = sum(chunks)
        a.accumulate(total)
        for dt in chunks:
            b.accumulate(dt)
        assert a.energy_j == pytest.approx(b.energy_j)

    @given(seconds=st.floats(0.5, 5.0), u=st.floats(0.1, 0.8))
    @settings(max_examples=15, deadline=None)
    def test_device_energy_equals_power_time_decomposition(self, seconds, u):
        """GPU energy over a single-phase kernel equals busy power x busy
        time + idle power x idle time."""
        system = make_testbed()
        gpu = system.gpu
        gpu.set_peak()
        spec = gpu.spec
        stall = spec.roofline.stall_for_utilizations(u, u / 2.0)
        kernel = KernelActivity([
            PhaseDemand(
                flops=u * seconds * spec.peak_compute_rate,
                bytes=(u / 2.0) * seconds * spec.peak_bandwidth,
                stall_s=stall * seconds,
            )
        ])
        gpu.submit_kernel(kernel)
        system.run_until_devices_idle()
        idle_tail = 1.5
        system.run_for(idle_tail)
        busy_power = spec.power.power(1.0, 1.0, u, u / 2.0)
        idle_power = spec.power.idle_power(1.0, 1.0)
        launch = spec.launch_overhead_s
        expected = (
            busy_power * seconds
            + idle_power * (idle_tail + launch)
        )
        assert gpu.energy_j == pytest.approx(expected, rel=1e-6)
