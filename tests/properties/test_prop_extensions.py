"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.hardware_table import QuantizedWeightTable
from repro.extensions.multigpu import DeviceTiming, MultiwayDivider
from repro.workloads.trace_replay import TraceSample, compress, project_feasible
from repro.sim.perf import RooflineModel

utils = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestQuantizedTableProperties:
    @given(
        bits=st.integers(4, 12),
        n=st.integers(2, 6),
        m=st.integers(2, 6),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_weights_bounded_and_argmax_defined(self, bits, n, m, data):
        table = QuantizedWeightTable(n, m, bits=bits)
        scale = (1 << bits) - 1
        for _ in range(data.draw(st.integers(1, 15))):
            loss = np.array(
                data.draw(
                    st.lists(
                        st.lists(st.floats(0.0, 1.0), min_size=m, max_size=m),
                        min_size=n, max_size=n,
                    )
                )
            )
            table.update(loss, beta=0.2)
            assert np.all(table.weights >= 0)
            assert np.all(table.weights <= scale)
        i, j = table.best_pair()
        assert 0 <= i < n and 0 <= j < m

    @given(loss_a=utils, loss_b=utils)
    @settings(max_examples=60)
    def test_clearly_separated_losses_ordered_correctly(self, loss_a, loss_b):
        """Losses more than a few quanta apart must order the weights."""
        if abs(loss_a - loss_b) < 16.0 / 255.0:
            return
        table = QuantizedWeightTable(1, 2, bits=8)
        loss = np.array([[loss_a, loss_b]])
        for _ in range(5):
            table.update(loss, beta=0.2)
        _, j = table.best_pair()
        assert j == (0 if loss_a < loss_b else 1)


class TestMultiwayProperties:
    @given(
        n_devices=st.integers(2, 5),
        step=st.floats(0.01, 0.2),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_shares_stay_on_simplex(self, n_devices, step, data):
        names = [f"d{i}" for i in range(n_devices)]
        divider = MultiwayDivider(names, step=step)
        for _ in range(data.draw(st.integers(1, 20))):
            timings = [
                DeviceTiming(name, data.draw(st.floats(0.0, 100.0)))
                for name in names
            ]
            divider.update(timings)
            shares = divider.shares
            assert shares.sum() == pytest.approx(1.0)
            assert np.all(shares >= -1e-12)

    @given(
        n_devices=st.integers(2, 4),
        speeds=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_closed_loop_settles(self, n_devices, speeds):
        names = [f"d{i}" for i in range(n_devices)]
        unit_times = [
            speeds.draw(st.floats(0.5, 10.0)) for _ in range(n_devices)
        ]
        divider = MultiwayDivider(names, step=0.05)
        settled = divider.drive(unit_times, iterations=60)
        again = divider.drive(unit_times, iterations=10)
        assert np.allclose(settled, again)


class TestTraceProperties:
    @given(u_core=utils, u_mem=utils)
    def test_projection_always_feasible(self, u_core, u_mem):
        roofline = RooflineModel(4.0)
        pc, pm = project_feasible(u_core, u_mem, roofline)
        assert roofline.utilization_norm(pc, pm) <= 0.99 + 1e-9
        assert 0.0 <= pc <= 1.0 and 0.0 <= pm <= 1.0

    @given(
        values=st.lists(
            st.tuples(utils, utils), min_size=2, max_size=40
        ),
        tolerance=st.floats(0.0, 0.5),
    )
    @settings(max_examples=60)
    def test_compression_preserves_total_duration(self, values, tolerance):
        samples = [
            TraceSample(float(i), uc, um) for i, (uc, um) in enumerate(values)
        ]
        segments = compress(samples, tolerance=tolerance)
        total = sum(d for d, _, _ in segments)
        # Trace span plus one extrapolated tail interval.
        assert total == pytest.approx(len(values) - 1 + 1.0)
        for _, uc, um in segments:
            assert 0.0 <= uc <= 1.0 and 0.0 <= um <= 1.0



