"""Paired-oracle property tests: the fast step path vs its kept reference.

``HeteroSystem.step`` is an optimized rewrite of ``_step_reference``
(epoch-cached device powers, single-pass dt selection, O(1) meter
fast-forward).  The optimization contract is *bit identity*: both paths
must produce exactly the same dt sequence, meter integrals, and run
results on every scenario — not merely approximately equal ones.  These
tests replay identical scenarios through both steppers and compare
floats with ``==``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.serialize import result_to_dict
from repro.runtime.executor import run_workload
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.platform import HeteroSystem, make_testbed


def reference_stepping():
    """Context manager: route all HeteroSystem stepping through the oracle."""
    import contextlib

    @contextlib.contextmanager
    def _ctx():
        original = HeteroSystem.step
        HeteroSystem.step = HeteroSystem._step_reference
        try:
            yield
        finally:
            HeteroSystem.step = original

    return _ctx()


def _policy(name, time_scale, faults, fault_seed):
    from repro.cli import POLICY_FACTORIES
    from repro.experiments.common import scaled_config
    from repro.faults.injector import fault_profile

    policy = POLICY_FACTORIES[name](scaled_config(time_scale))
    if faults != "none":
        policy = policy.with_faults(fault_profile(faults, seed=fault_seed))
    return policy


def _run(workload_name, policy_name, n_iterations, time_scale, faults,
         fault_seed):
    from repro.experiments.common import scaled_options, scaled_workload

    return run_workload(
        scaled_workload(workload_name, time_scale),
        _policy(policy_name, time_scale, faults, fault_seed),
        n_iterations=n_iterations,
        options=scaled_options(time_scale),
    )


class TestWholeRunBitIdentity:
    @given(
        workload=st.sampled_from(["kmeans", "hotspot", "nbody", "streamcluster"]),
        policy=st.sampled_from(
            ["greengpu", "scaling-only", "division-only", "best-performance"]
        ),
        faults=st.sampled_from(["none", "light", "moderate"]),
        fault_seed=st.integers(0, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_fast_and_reference_runs_identical(self, workload, policy, faults,
                                               fault_seed):
        fast = _run(workload, policy, 1, 0.05, faults, fault_seed)
        with reference_stepping():
            oracle = _run(workload, policy, 1, 0.05, faults, fault_seed)
        # result_to_dict captures the full surface — energies, times,
        # division/frequency traces, health counters — as plain floats;
        # dict equality is therefore bitwise comparison of all of them.
        assert result_to_dict(fast) == result_to_dict(oracle)

    def test_multi_iteration_greengpu_identical(self):
        fast = _run("kmeans", "greengpu", 3, 0.05, "none", 0)
        with reference_stepping():
            oracle = _run("kmeans", "greengpu", 3, 0.05, "none", 0)
        assert result_to_dict(fast) == result_to_dict(oracle)


def _submit_scenario(system, kernels, cpu_frequency_level, gpu_levels):
    """Load one deterministic scenario onto a fresh testbed."""
    gpu, cpu = system.gpu, system.cpu
    gpu.set_frequencies(
        gpu.spec.core_ladder[gpu_levels[0]], gpu.spec.mem_ladder[gpu_levels[1]]
    )
    cpu.set_frequency(cpu.spec.ladder[cpu_frequency_level])
    for flops_scale, bytes_scale, stall_s in kernels:
        spec = gpu.spec
        gpu.submit_kernel(KernelActivity([
            PhaseDemand(
                flops=flops_scale * spec.peak_compute_rate,
                bytes=bytes_scale * spec.peak_bandwidth,
                stall_s=stall_s,
            )
        ]))
        cpu.submit_kernel(KernelActivity([
            PhaseDemand(
                flops=flops_scale * 0.5 * cpu.spec.peak_compute_rate,
                bytes=0.0,
                stall_s=stall_s * 0.5,
            )
        ]))


class TestStepTrajectoryBitIdentity:
    @given(
        kernels=st.lists(
            st.tuples(
                st.floats(0.05, 2.0),
                st.floats(0.05, 2.0),
                st.floats(0.0, 0.3),
            ),
            min_size=1, max_size=4,
        ),
        cpu_level=st.integers(0, 2),
        core_level=st.integers(0, 2),
        mem_level=st.integers(0, 2),
        tick_period=st.floats(0.05, 0.4),
    )
    @settings(max_examples=25, deadline=None)
    def test_dt_sequence_and_integrals_match(self, kernels, cpu_level,
                                             core_level, mem_level,
                                             tick_period):
        fast = make_testbed()
        oracle = make_testbed()
        for system in (fast, oracle):
            _submit_scenario(system, kernels, cpu_level,
                             (core_level, mem_level))
            system.clock.every(tick_period, lambda t: None)

        for _ in range(400):
            if not (fast.gpu.busy or fast.cpu.has_work):
                break
            dt_fast = fast.step(horizon=10.0)
            dt_ref = oracle._step_reference(horizon=10.0)
            assert dt_fast == dt_ref  # bitwise, not approx
        fast.finalize_meters()
        oracle.finalize_meters()

        assert fast.meter_cpu.energy_j == oracle.meter_cpu.energy_j
        assert fast.meter_gpu.energy_j == oracle.meter_gpu.energy_j
        assert fast.meter_cpu.elapsed_s == oracle.meter_cpu.elapsed_s
        assert fast.meter_cpu.samples == oracle.meter_cpu.samples
        assert fast.meter_gpu.samples == oracle.meter_gpu.samples
        assert fast.gpu.energy_j == oracle.gpu.energy_j
        assert fast.cpu.energy_j == oracle.cpu.energy_j
        assert fast.now == oracle.now

    def test_mid_run_frequency_changes_match(self):
        fast = make_testbed()
        oracle = make_testbed()

        def retune(system):
            gpu = system.gpu

            def cb(t):
                level = int(t * 10) % len(gpu.spec.core_ladder)
                gpu.set_frequencies(
                    gpu.spec.core_ladder[level], gpu.f_mem
                )

            return cb

        for system in (fast, oracle):
            _submit_scenario(system, [(1.0, 0.5, 0.1), (0.4, 1.2, 0.0)], 1,
                             (0, 0))
            system.clock.every(0.13, retune(system))

        while fast.gpu.busy or fast.cpu.has_work:
            assert fast.step(horizon=5.0) == oracle._step_reference(horizon=5.0)
        assert fast.meter_cpu.energy_j == oracle.meter_cpu.energy_j
        assert fast.meter_gpu.energy_j == oracle.meter_gpu.energy_j


class TestInstantaneousPowerCache:
    def test_cached_power_matches_uncached_after_mutations(self):
        system = make_testbed()
        gpu, cpu = system.gpu, system.cpu
        assert gpu.instantaneous_power() == gpu.instantaneous_power_uncached()
        assert cpu.instantaneous_power() == cpu.instantaneous_power_uncached()
        gpu.set_frequencies(gpu.spec.core_ladder[1], gpu.spec.mem_ladder[1])
        cpu.set_frequency(cpu.spec.ladder[1])
        assert gpu.instantaneous_power() == gpu.instantaneous_power_uncached()
        assert cpu.instantaneous_power() == cpu.instantaneous_power_uncached()
        gpu.submit_kernel(KernelActivity([
            PhaseDemand(flops=gpu.spec.peak_compute_rate, bytes=0.0,
                        stall_s=0.0)
        ]))
        assert gpu.instantaneous_power() == gpu.instantaneous_power_uncached()
        while gpu.busy:
            gpu.advance(gpu.time_to_event())
            assert gpu.instantaneous_power() == gpu.instantaneous_power_uncached()

    def test_spin_state_invalidates_cpu_cache(self):
        system = make_testbed()
        cpu = system.cpu
        idle = cpu.instantaneous_power()
        cpu.spin()
        spinning = cpu.instantaneous_power()
        assert spinning > idle
        assert spinning == cpu.instantaneous_power_uncached()
        cpu.stop_spin()
        assert cpu.instantaneous_power() == idle
