"""Property tests: seeded fault plans never crash and never lose events.

Each case builds a pseudo-random :class:`FaultPlan` from its seed, drives
a full divided run through the hardened controller, and asserts the two
tentpole invariants of the fault subsystem:

1. **No crash** — whatever the plan injects, the run completes and
   produces finite, non-negative measurements.
2. **No silent loss** — every fault the injector fired is visible as a
   recorded ``fault_<kind>`` trace event; the count on the injector and
   the length of the channel agree exactly.
"""

import numpy as np
import pytest

from repro.core.config import GreenGpuConfig
from repro.core.controller import GreenGpuController, TierMode
from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.wrappers import LossyPowerMeter
from repro.runtime.executor import ExecutorOptions, HeteroExecutor
from repro.sim.platform import make_testbed
from repro.sim.trace import TraceRecorder

from tests.conftest import FAST_SCALE, fast_workload

N_PLANS = 25


def random_plan(seed: int) -> FaultPlan:
    """A pseudo-random plan derived deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    u = lambda hi: float(rng.uniform(0.0, hi))  # noqa: E731
    episodes = ()
    if rng.random() < 0.3:
        start = float(rng.uniform(0.0, 2.0))
        episodes = ((start, float(rng.uniform(0.1, 1.0))),)
    return FaultPlan(
        seed=seed,
        monitor_timeout_rate=u(0.15),
        monitor_drop_rate=u(0.10),
        monitor_freeze_rate=u(0.10),
        actuator_reject_rate=u(0.15),
        actuator_ignore_rate=u(0.10),
        actuator_offby_rate=u(0.10),
        device_stall_rate=u(0.02),
        device_stall_duration_s=5.0 * FAST_SCALE,
        meter_loss_rate=u(0.15),
        stall_episodes=episodes,
    )


def run_chaos(plan: FaultPlan):
    """One full hardened GreenGPU run with direct injector access."""
    system = make_testbed()
    injector = FaultInjector(plan)
    # Exercise the meter-loss path too: swap in the lossy wall meter.
    system.meter_gpu = LossyPowerMeter(
        system.meter_gpu.name,
        [system.gpu.instantaneous_power],
        injector,
        overhead_w=system.meter_gpu.overhead_w,
        efficiency=system.meter_gpu.efficiency,
        sample_period_s=system.meter_gpu.sample_period_s,
    )
    recorder = TraceRecorder()
    config = GreenGpuConfig(
        scaling_interval_s=3.0 * FAST_SCALE,
        ondemand_interval_s=0.1 * FAST_SCALE,
    )
    controller = GreenGpuController(
        TierMode.HOLISTIC,
        config,
        initial_ratio=0.3,
        recorder=recorder,
        faults=injector,
    )
    controller.attach(system)
    executor = HeteroExecutor(
        system,
        fast_workload("kmeans"),
        controller,
        ExecutorOptions(repartition_overhead_s=0.5 * FAST_SCALE),
    )
    iterations = executor.run(4)
    health = controller.health
    controller.detach()
    return iterations, injector, recorder, health


@pytest.mark.parametrize("seed", range(N_PLANS))
def test_seeded_plan_never_crashes_and_never_loses_events(seed):
    iterations, injector, recorder, health = run_chaos(random_plan(seed))

    # 1. The run completed with sane physics.
    assert len(iterations) == 4
    for m in iterations:
        assert np.isfinite(m.wall_s) and m.wall_s > 0.0
        assert np.isfinite(m.energy_j) and m.energy_j > 0.0

    # 2. Every injected fault is a recorded trace event — no silent loss.
    for kind, count in injector.counts.items():
        assert len(recorder.trace(f"fault_{kind}")) == count, kind

    # 3. The controller observed faults iff the injector fired monitor /
    #    actuator kinds (meter loss is invisible to the control loop).
    control_kinds = {
        k: c for k, c in injector.counts.items()
        if not k.startswith("meter_")
    }
    if control_kinds:
        assert health.total_events > 0


def test_plans_are_reproducible():
    """Same seed, same plan, same run: counts and health match exactly."""
    plan = random_plan(7)
    _, inj_a, _, health_a = run_chaos(plan)
    _, inj_b, _, health_b = run_chaos(plan)
    assert inj_a.counts == inj_b.counts
    assert health_a.as_dict() == health_b.as_dict()
