"""Property tests: fleet budget conservation, for every allocator.

The allocators' contract (``repro.fleet.allocators``) is that at every
coordination tick, for any feasible budget:

1. **conservation** — ``sum(caps) <= budget`` exactly (a datacenter
   breaker does not care about float round-off in its favour);
2. **enforceability** — every cap sits inside the node's
   ``[floor_w, peak_w]`` band, so a frequency ceiling can honour it;
3. **infeasibility is loud** — a budget below the fleet's floor draw
   raises instead of silently shaving floors.

Two layers of cases pin this: synthetic demand vectors drawn directly by
Hypothesis (wider and nastier than any scenario generator produces), and
full coordinator plans over generated scenarios including rolling budget
steps and correlated fault bursts (the drain horizon included).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fleet.allocators import ALLOCATORS, NodeDemand, get_allocator
from repro.fleet.coordinator import PowerCapCoordinator
from repro.fleet.scenario import FleetScenario

ALL_NAMES = sorted(ALLOCATORS)

#: Absolute conservation slack (watts, whole fleet) — covers only the
#: comparison itself, not an allocation error.
EPS_W = 1e-6


@st.composite
def demand_vectors(draw):
    """A fleet of synthetic, mutually unrelated node demands."""
    n = draw(st.integers(min_value=1, max_value=40))
    demands = []
    for node_id in range(n):
        floor = draw(st.floats(min_value=10.0, max_value=500.0))
        headroom = draw(st.floats(min_value=0.0, max_value=400.0))
        want_frac = draw(st.floats(min_value=0.0, max_value=1.0))
        efficiency = draw(st.floats(min_value=0.0, max_value=1e12))
        demands.append(NodeDemand(
            node_id=node_id, floor_w=floor, peak_w=floor + headroom,
            demand_w=floor + want_frac * headroom, efficiency=efficiency,
        ))
    floors = sum(d.floor_w for d in demands)
    peaks = sum(d.peak_w for d in demands)
    # From exactly-at-floor through beyond-saturation.
    budget = draw(st.floats(min_value=floors, max_value=2.0 * peaks + 1.0))
    return demands, budget


@pytest.mark.parametrize("name", ALL_NAMES)
@given(case=demand_vectors())
@settings(max_examples=60, deadline=None)
def test_synthetic_demands_conserve_budget(name, case):
    demands, budget = case
    caps = get_allocator(name).allocate(demands, budget)
    assert len(caps) == len(demands)
    assert sum(caps) <= budget + EPS_W
    for demand, cap in zip(demands, caps):
        assert demand.floor_w - EPS_W <= cap <= demand.peak_w + EPS_W
        assert math.isfinite(cap)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_infeasible_budget_raises(name):
    demands = [NodeDemand(i, floor_w=100.0, peak_w=200.0, demand_w=150.0)
               for i in range(3)]
    with pytest.raises(ConfigError):
        get_allocator(name).allocate(demands, 299.0)


@st.composite
def scenarios(draw):
    """Small but fully-featured fleet scenarios (bursts, rolling caps)."""
    n_nodes = draw(st.integers(min_value=1, max_value=24))
    duration = draw(st.sampled_from([24.0, 36.0, 60.0]))
    budget_frac = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    changes = ()
    if draw(st.booleans()):
        changes = (
            (duration / 3.0, draw(st.floats(min_value=0.0, max_value=1.0))),
            (2.0 * duration / 3.0,
             draw(st.floats(min_value=0.0, max_value=1.0))),
        )
    bursts = ()
    burst_frac = 0.25
    if draw(st.booleans()):
        bursts = ((duration * 0.25, 18.0),)
        burst_frac = draw(st.floats(min_value=0.0, max_value=1.0))
    return FleetScenario(
        name="prop", n_nodes=n_nodes,
        nodes_per_rack=draw(st.integers(min_value=1, max_value=8)),
        duration_s=duration, coordination_interval_s=12.0,
        day_length_s=duration, budget_frac=budget_frac,
        budget_changes=changes, fault_burst_windows=bursts,
        fault_burst_rack_frac=burst_frac, seed=seed,
    )


@pytest.mark.parametrize("name", ALL_NAMES)
@given(scenario=scenarios())
@settings(max_examples=20, deadline=None)
def test_full_plans_conserve_budget_every_tick(name, scenario):
    """Conservation holds at every tick of a real coordinator plan —
    scenario windows and drain horizon alike, budget steps included."""
    coordinator = PowerCapCoordinator(scenario, name)
    plan = coordinator.plan()
    assert plan.n_ticks >= scenario.n_windows
    for row, stats in zip(plan.caps, plan.stats):
        assert stats.budget_w == pytest.approx(
            coordinator.budget_at(stats.t))
        assert sum(row) <= stats.budget_w + EPS_W
        for node_id, cap in enumerate(row):
            profile = coordinator.profiles[node_id]
            assert profile.floor_w - EPS_W <= cap <= profile.peak_w + EPS_W
