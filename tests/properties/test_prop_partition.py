"""Property-based tests for partitioning and kernel division contracts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime.partition import partition_slices, split_units
from repro.workloads import hotspot, kmeans, pathfinder

ratios = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPartitionProperties:
    @given(n=st.integers(0, 10_000), r=ratios)
    def test_slices_partition_exactly(self, n, r):
        cpu, gpu = partition_slices(n, r)
        assert cpu.start == 0
        assert cpu.stop == gpu.start
        assert gpu.stop == n

    @given(total=st.floats(0.0, 1e9), r=ratios)
    def test_units_conserved(self, total, r):
        cpu, gpu = split_units(total, r)
        assert cpu + gpu == np.float64(total) or abs(cpu + gpu - total) < 1e-6 * max(total, 1.0)
        assert cpu >= 0.0 and gpu >= 0.0

    @given(n=st.integers(1, 1000), r=ratios)
    def test_boundary_proportional(self, n, r):
        cpu, _ = partition_slices(n, r)
        assert abs(cpu.stop - r * n) <= 0.5 + 1e-9


class TestKernelDivisionContracts:
    @given(r=ratios, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_kmeans_any_split_matches(self, r, seed):
        problem = kmeans.generate_problem(n=128, k=4, d=3, seed=seed)
        labels_m, cent_m = kmeans.lloyd_step(problem)
        labels_p, cent_p = kmeans.lloyd_step_partitioned(problem, r)
        assert np.array_equal(labels_m, labels_p)
        assert np.allclose(cent_m, cent_p)

    @given(r=ratios, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_hotspot_any_split_matches(self, r, seed):
        problem = hotspot.generate_problem(rows=16, cols=12, seed=seed)
        assert np.allclose(
            hotspot.step(problem.temp, problem.power),
            hotspot.step_partitioned(problem.temp, problem.power, r),
        )

    @given(
        r=ratios,
        grid=hnp.arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(2, 12), st.integers(2, 12)),
            elements=st.integers(1, 100),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_pathfinder_any_split_any_grid(self, r, grid):
        assert np.array_equal(
            pathfinder.min_path_costs(grid, 0.0),
            pathfinder.min_path_costs(grid, r),
        )
