"""Property-based tests for the roofline model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.perf import RooflineModel

exponents = st.sampled_from([1.0, 2.0, 4.0, 8.0, float("inf")])
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
positive_rates = st.floats(min_value=1e-3, max_value=1e15, allow_nan=False)
demands = st.floats(min_value=0.0, max_value=1e18, allow_nan=False)
utils = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestCombineProperties:
    @given(k=exponents, tc=times, tm=times, ts=times)
    def test_bounded_between_max_and_sum(self, k, tc, tm, ts):
        t = RooflineModel(k).combine(tc, tm, ts)
        assert t >= max(tc, tm, ts) - 1e-9 * max(tc, tm, ts, 1.0)
        assert t <= tc + tm + ts + 1e-9 * (tc + tm + ts + 1.0)

    @given(tc=times, tm=times, ts=times)
    def test_larger_exponent_never_slower(self, tc, tm, ts):
        """More overlap (larger k) can only reduce the combined time."""
        t2 = RooflineModel(2.0).combine(tc, tm, ts)
        t8 = RooflineModel(8.0).combine(tc, tm, ts)
        assert t8 <= t2 * (1.0 + 1e-12)

    @given(k=exponents, tc=times, tm=times, scale=st.floats(1e-3, 1e3))
    def test_positively_homogeneous(self, k, tc, tm, scale):
        """combine(s*tc, s*tm) == s * combine(tc, tm)."""
        m = RooflineModel(k)
        lhs = m.combine(tc * scale, tm * scale)
        rhs = scale * m.combine(tc, tm)
        assert math.isclose(lhs, rhs, rel_tol=1e-9, abs_tol=1e-12)


class TestEstimateProperties:
    @given(
        k=exponents, flops=demands, bytes_=demands,
        rate=positive_rates, bw=positive_rates,
        stall=st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=200)
    def test_utilizations_always_valid(self, k, flops, bytes_, rate, bw, stall):
        est = RooflineModel(k).estimate(flops, bytes_, rate, bw, stall)
        assert 0.0 <= est.u_core <= 1.0
        assert 0.0 <= est.u_mem <= 1.0
        assert est.seconds >= 0.0

    @given(k=exponents, u_core=utils, u_mem=utils)
    def test_stall_solution_round_trips(self, k, u_core, u_mem):
        """Whenever a pair is feasible, the solved stall reproduces it."""
        m = RooflineModel(k)
        if m.utilization_norm(u_core, u_mem) > 1.0:
            return
        stall = m.stall_for_utilizations(u_core, u_mem)
        est = m.estimate(u_core * 10.0, u_mem * 10.0, 10.0, 10.0, stall * 1.0)
        assert math.isclose(est.u_core, u_core, rel_tol=1e-6, abs_tol=1e-9)
        assert math.isclose(est.u_mem, u_mem, rel_tol=1e-6, abs_tol=1e-9)

    @given(
        flops=st.floats(1.0, 1e12), bytes_=st.floats(1.0, 1e12),
        rate=positive_rates, bw=positive_rates,
        throttle=st.floats(0.1, 1.0),
    )
    def test_throttling_never_speeds_up(self, flops, bytes_, rate, bw, throttle):
        m = RooflineModel(4.0)
        base = m.estimate(flops, bytes_, rate, bw)
        slow = m.estimate(flops, bytes_, rate * throttle, bw)
        assert slow.seconds >= base.seconds * (1.0 - 1e-12)
