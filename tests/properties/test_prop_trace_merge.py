"""Property: stitched trace trees are execution-strategy invariant.

Trace ids derive from the causal path (parent ids + names + occurrence
counters), never from wall clocks, pids, or randomness — so the same
jobs must stitch into the *same* tree no matter how they were executed:
serial or ``--parallel``, inline or spawn-isolated, one fleet process
or supervised shard workers.  These tests pin that contract, which is
what makes trace diffs between runs meaningful.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.job import JobSpec
from repro.harness.supervisor import run_jobs
from repro.telemetry import Telemetry
from repro.telemetry.exporters import EVENTS_NAME, read_events
from repro.telemetry.traceview import stitch_spans, tree_signature

TESTJOBS = "repro.harness._testjobs"

job_names = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
    unique=True, min_size=1, max_size=4,
)


def harness_signature(names, *, parallel=1, isolate=False):
    telemetry = Telemetry()
    specs = [JobSpec(name=name, target=f"{TESTJOBS}:ok",
                     kwargs={"value": index})
             for index, name in enumerate(names)]
    with tempfile.TemporaryDirectory(prefix="trace-prop-") as run_dir:
        run_jobs(specs, run_dir, parallel=parallel, isolate=isolate,
                 telemetry=telemetry)
    return tree_signature(stitch_spans(telemetry.events))


class TestHarnessParity:
    @given(names=job_names)
    @settings(max_examples=10, deadline=None)
    def test_signature_independent_of_submission_order(self, names):
        assert harness_signature(names) == harness_signature(
            list(reversed(names))
        )

    def test_serial_equals_parallel_spawn(self):
        names = ["alpha", "beta", "gamma"]
        serial = harness_signature(names, parallel=1, isolate=True)
        fanned = harness_signature(names, parallel=2, isolate=True)
        assert serial == fanned
        # And the spawn boundary itself must not perturb ids.
        assert serial == harness_signature(names, isolate=False)


def fleet_signature(tmp, *, sharded):
    from repro.fleet import make_scenario
    from repro.fleet.shard import export_fleet_worker, shard_name
    from repro.fleet.sim import FleetSim
    from repro.telemetry import merge_directory
    from repro.telemetry.tracecontext import default_context, propagation_env

    scenario = make_scenario("diurnal", n_nodes=4, seed=0, nodes_per_rack=2,
                             duration_s=6.0, coordination_interval_s=3.0,
                             budget_frac=0.5)
    telemetry_dir = os.path.join(tmp, "tel")
    if sharded:
        sim = FleetSim(scenario, "uniform-cap", shards=1,
                       run_dir=os.path.join(tmp, "run"),
                       telemetry_dir=telemetry_dir)
        assert sim.run() is not None
    else:
        result = FleetSim(scenario, "uniform-cap").run()
        whole = shard_name(0, scenario.n_nodes)
        with propagation_env(default_context().child("job", whole)):
            export_fleet_worker(list(result.nodes), telemetry_dir, whole,
                                "uniform-cap")
    merge_directory(telemetry_dir)
    events = read_events(os.path.join(telemetry_dir, EVENTS_NAME))
    return tree_signature(stitch_spans(events))


class TestFleetParity:
    def test_inline_equals_sharded(self, tmp_path):
        inline = fleet_signature(str(tmp_path / "inline"), sharded=False)
        sharded = fleet_signature(str(tmp_path / "sharded"), sharded=True)
        assert inline  # the fleet_shard span made it into the stream
        assert inline == sharded
