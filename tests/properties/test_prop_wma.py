"""Property-based tests for the WMA scaler and its building blocks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import GreenGpuConfig
from repro.core.loss import loss_vector, total_loss_matrix, umean_vector
from repro.core.weights import WeightTable
from repro.core.wma import WmaFrequencyScaler
from repro.sim.frequency import FrequencyLadder

utils = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
level_counts = st.integers(min_value=2, max_value=8)


class TestLossProperties:
    @given(u=utils, alpha=alphas, n=level_counts)
    def test_losses_in_unit_interval(self, u, alpha, n):
        vec = loss_vector(u, umean_vector(n), alpha)
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)

    @given(u=utils, n=level_counts)
    def test_zero_loss_only_at_exact_umean(self, u, n):
        """Loss vanishes only where u (essentially) equals the level's
        umean — "essentially" because subnormal |u - umean| gaps can
        underflow to a zero loss after the alpha multiply."""
        umeans = umean_vector(n)
        vec = loss_vector(u, umeans, 0.5)
        for loss, umean in zip(vec, umeans):
            if loss == 0.0:
                assert abs(u - umean) < 1e-300
            else:
                assert u != umean

    @given(u=utils, alpha=alphas, phi=utils, n=level_counts, m=level_counts)
    def test_total_loss_in_unit_interval(self, u, alpha, phi, n, m):
        lc = loss_vector(u, umean_vector(n), alpha)
        lm = loss_vector(1.0 - u, umean_vector(m), alpha)
        total = total_loss_matrix(lc, lm, phi)
        assert total.shape == (n, m)
        assert np.all(total >= 0.0) and np.all(total <= 1.0)


class TestWeightTableProperties:
    @given(
        n=level_counts, m=level_counts,
        beta=st.floats(0.01, 0.99),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_weights_stay_positive_and_ordered_by_loss(self, n, m, beta, data):
        """After any sequence of identical loss matrices, weights order
        inversely to cumulative loss."""
        table = WeightTable(n, m)
        loss = np.array(
            data.draw(
                st.lists(
                    st.lists(st.floats(0.0, 1.0), min_size=m, max_size=m),
                    min_size=n, max_size=n,
                )
            )
        )
        for _ in range(data.draw(st.integers(1, 10))):
            table.update(loss, beta)
        w = table.weights
        assert np.all(w > 0.0)
        i, j = table.best_pair()
        # Float ties: losses within one ulp of the minimum share the top
        # weight after rounding, so allow a hair of slack.
        assert loss[i, j] <= loss.min() + 1e-12

    @given(n=level_counts, m=level_counts)
    def test_initial_best_pair_is_fastest(self, n, m):
        assert WeightTable(n, m).best_pair() == (0, 0)


class TestScalerProperties:
    @given(u_core=utils, u_mem=utils, steps=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_stationary_input_settles(self, u_core, u_mem, steps):
        """Driving with a constant utilization pair always converges to a
        fixed frequency pair within the table horizon."""
        ladder = FrequencyLadder.equally_spaced(100.0, 600.0, 6)
        scaler = WmaFrequencyScaler(ladder, ladder, GreenGpuConfig())
        decisions = [scaler.step(u_core, u_mem) for _ in range(30 + steps)]
        tail = decisions[-5:]
        pairs = {(d.core_level, d.mem_level) for d in tail}
        assert len(pairs) == 1

    @given(u=utils)
    @settings(max_examples=30, deadline=None)
    def test_higher_utilization_never_lower_frequency(self, u):
        """Monotonicity of the settled choice in utilization."""
        ladder = FrequencyLadder.equally_spaced(100.0, 600.0, 6)
        low = WmaFrequencyScaler(ladder, ladder)
        high = WmaFrequencyScaler(ladder, ladder)
        u_hi = min(1.0, u + 0.3)
        for _ in range(25):
            d_low = low.step(u, u)
            d_high = high.step(u_hi, u_hi)
        assert d_high.core_level <= d_low.core_level
        assert d_high.mem_level <= d_low.mem_level
