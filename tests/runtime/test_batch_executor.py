"""Dispatch tests for the batched execution layer.

Every :class:`RunResult` now carries an ``engine`` provenance field; the
table test below drives one request of each dispatch-relevant shape
through :class:`BatchExecutor` and asserts which path it actually took.
The field is deliberately excluded from ``result_to_dict`` so provenance
never leaks into the cache or the journal — also asserted here.
"""

import pytest

from repro.analysis.serialize import result_to_dict
from repro.cache import ResultCache
from repro.core.policies import GreenGpuPolicy, StaticPolicy
from repro.errors import SimulationError
from repro.faults.injector import fault_profile
from repro.runtime.batch_executor import (
    FLEET_SCALAR_REASON,
    BatchExecutor,
    RunRequest,
    classify,
)
from repro.runtime.executor import ExecutorOptions, run_workload
from repro.sim.platform import make_testbed
from repro.sim.trace import TraceRecorder
from tests.conftest import FAST_SCALE, fast_workload


def _options() -> ExecutorOptions:
    return ExecutorOptions(repartition_overhead_s=0.5 * FAST_SCALE)


def _request(**overrides) -> RunRequest:
    base = dict(
        workload=fast_workload("kmeans"),
        policy=StaticPolicy(0, 0, ratio=0.3),
        n_iterations=1,
        options=_options(),
    )
    base.update(overrides)
    return RunRequest(**base)


class _OpaqueWorkload:
    name = "opaque"
    default_iterations = 1


class TestClassify:
    def test_eligible_request_classifies_none(self):
        assert classify(_request()) is None

    @pytest.mark.parametrize("overrides, reason", [
        ({"workload": _OpaqueWorkload()}, "workload"),
        ({"policy": GreenGpuPolicy().with_faults(
            fault_profile("light", seed=0))}, "faults"),
        ({"system": object()}, "system"),
        ({"recorder": TraceRecorder()}, "recorder"),
        ({"audit": object()}, "audit"),
        ({"warmup_s": 0.5}, "warmup"),
    ])
    def test_ineligible_reasons(self, overrides, reason):
        assert classify(_request(**overrides)) == reason

    def test_enabled_telemetry_is_ineligible(self):
        from repro.telemetry import Telemetry

        assert classify(_request(telemetry=Telemetry())) == "telemetry"

    def test_disabled_telemetry_stays_eligible(self):
        class _Disabled:
            enabled = False

        assert classify(_request(telemetry=_Disabled())) is None


class TestDispatchTable:
    def test_batch_of_eligible_requests(self):
        requests = [
            _request(policy=StaticPolicy(0, 0, ratio=r))
            for r in (0.0, 0.3, 0.6)
        ]
        results = BatchExecutor().run_many(requests)
        assert [r.engine for r in results] == ["batch"] * 3

    def test_singleton_falls_back_to_scalar(self):
        [result] = BatchExecutor().run_many([_request()])
        assert result.engine == "scalar:singleton"

    def test_mixed_batch_annotates_each_fallback(self):
        requests = [
            _request(),                                    # lane 0: batch
            _request(policy=GreenGpuPolicy().with_faults(
                fault_profile("light", seed=0))),          # scalar:faults
            _request(policy=StaticPolicy(1, 1, ratio=0.5)),  # lane 1: batch
            _request(warmup_s=0.2),                        # scalar:warmup
        ]
        results = BatchExecutor().run_many(requests)
        assert [r.engine for r in results] == [
            "batch", "scalar:faults", "batch", "scalar:warmup",
        ]

    def test_scalar_fallback_matches_run_workload(self):
        request = _request(warmup_s=0.2)
        [result] = BatchExecutor().run_many([request])
        direct = run_workload(request.workload, request.policy,
                              n_iterations=request.n_iterations,
                              options=request.options,
                              warmup_s=request.warmup_s)
        assert result_to_dict(result) == result_to_dict(direct)

    def test_engine_excluded_from_serialized_surface(self):
        [a, b] = BatchExecutor().run_many([_request(), _request()])
        assert a.engine == "batch"
        assert "engine" not in result_to_dict(a)
        assert result_to_dict(a) == result_to_dict(b)

    def test_fleet_reason_constant_shape(self):
        # Fleet shards stamp this into their payloads; keep it in the
        # same "scalar:<reason>" namespace the executor uses.
        assert FLEET_SCALAR_REASON.startswith("scalar:")


class TestCacheInterplay:
    def test_batch_results_stored_per_lane(self, tmp_path):
        cache = ResultCache(tmp_path)
        requests = [
            _request(policy=StaticPolicy(0, 0, ratio=r))
            for r in (0.1, 0.7)
        ]
        executor = BatchExecutor(cache=cache)
        first = executor.run_many(requests)
        assert [r.engine for r in first] == ["batch", "batch"]
        assert cache.stores == 2

        second = executor.run_many([
            _request(policy=StaticPolicy(0, 0, ratio=r))
            for r in (0.1, 0.7)
        ])
        assert [r.engine for r in second] == ["cache", "cache"]
        for a, b in zip(first, second):
            assert result_to_dict(a) == result_to_dict(b)

    def test_batch_entries_serve_scalar_run_workload(self, tmp_path):
        """Batching is invisible to the cache: a scalar ``run_workload``
        with the same request must hit the batch-stored entry."""
        cache = ResultCache(tmp_path)
        requests = [
            _request(policy=StaticPolicy(0, 0, ratio=r))
            for r in (0.2, 0.8)
        ]
        [batched, _] = BatchExecutor(cache=cache).run_many(requests)
        hits_before = cache.hits
        scalar = run_workload(
            fast_workload("kmeans"), StaticPolicy(0, 0, ratio=0.2),
            n_iterations=1, options=_options(), cache=cache,
        )
        assert cache.hits == hits_before + 1
        assert scalar.engine == "cache"
        assert result_to_dict(scalar) == result_to_dict(batched)

    def test_partial_hits_batch_only_the_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = BatchExecutor(cache=cache)
        executor.run_many([
            _request(policy=StaticPolicy(0, 0, ratio=r))
            for r in (0.1, 0.5)
        ])
        results = executor.run_many([
            _request(policy=StaticPolicy(0, 0, ratio=r))
            for r in (0.1, 0.3, 0.5, 0.9)
        ])
        assert [r.engine for r in results] == [
            "cache", "batch", "cache", "batch",
        ]


class TestFinalizeMetersOnFailure:
    def test_meters_flushed_when_iteration_times_out(self):
        """A mid-horizon ``SimulationError`` must still leave a
        caller-owned system's meter logs finalized (no open partial
        sampling window)."""
        system = make_testbed()
        options = ExecutorOptions(
            repartition_overhead_s=0.5 * FAST_SCALE,
            iteration_timeout_s=1e-3,
        )
        with pytest.raises(SimulationError):
            run_workload(fast_workload("kmeans"), StaticPolicy(0, 0, ratio=0.3),
                         n_iterations=1, system=system, options=options)
        assert system.meter_cpu.elapsed_s > 0.0
        assert len(system.meter_cpu.samples) > 0
        # finalize() already ran in the executor's finally block, so a
        # second flush must be a no-op — the partial window was closed.
        cpu_samples = len(system.meter_cpu.samples)
        gpu_samples = len(system.meter_gpu.samples)
        system.finalize_meters()
        assert len(system.meter_cpu.samples) == cpu_samples
        assert len(system.meter_gpu.samples) == gpu_samples
