"""Tests for the heterogeneous executor."""

import pytest

from repro.core.policies import (
    BestPerformancePolicy,
    DivisionOnlyPolicy,
    RodiniaDefaultPolicy,
    StaticPolicy,
)
from repro.errors import SimulationError
from repro.runtime.executor import ExecutorOptions, run_workload
from repro.sim.platform import make_testbed
from tests.conftest import FAST_SCALE, fast_workload


class TestSingleIterations:
    def test_all_gpu_iteration_timing(self, fast_kmeans):
        result = run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1)
        m = result.iterations[0]
        assert m.tc == 0.0
        # tg ~ scaled iteration seconds + transfers + launch overhead.
        nominal = fast_kmeans.profile.gpu_seconds_per_iteration
        assert m.tg == pytest.approx(nominal, rel=0.02)
        assert m.wall_s >= m.tg

    def test_divided_iteration_reports_both_times(self, fast_kmeans):
        result = run_workload(
            fast_kmeans, StaticPolicy(0, 0, ratio=0.2), n_iterations=1
        )
        m = result.iterations[0]
        assert m.tc > 0.0 and m.tg > 0.0

    def test_cpu_spins_while_gpu_works(self, fast_kmeans):
        system = make_testbed()
        run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1, system=system)
        # Synchronized communication: CPU busy-waits the entire GPU run.
        assert system.cpu.spin_seconds > 0.9 * system.now

    def test_async_mode_no_spin(self, fast_kmeans):
        system = make_testbed()
        run_workload(
            fast_kmeans,
            RodiniaDefaultPolicy(),
            n_iterations=1,
            system=system,
            options=ExecutorOptions(sync_spin=False),
        )
        assert system.cpu.spin_seconds == 0.0

    def test_energy_split_across_meters(self, fast_kmeans):
        result = run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1)
        assert result.total_energy_j == pytest.approx(
            result.gpu_energy_j + result.cpu_energy_j
        )
        assert result.gpu_energy_j > 0.0 and result.cpu_energy_j > 0.0


class TestDivisionDynamics:
    def test_balanced_division_shorter_than_all_gpu(self, fast_hotspot, fast_options, fast_config):
        base = run_workload(fast_hotspot, RodiniaDefaultPolicy(), n_iterations=6,
                            options=fast_options)
        divided = run_workload(
            fast_hotspot, DivisionOnlyPolicy(config=fast_config),
            n_iterations=6, options=fast_options,
        )
        assert divided.total_s < base.total_s

    def test_repartition_overhead_charged_on_ratio_change(self, fast_kmeans, fast_config):
        heavy = ExecutorOptions(repartition_overhead_s=1.0)
        light = ExecutorOptions(repartition_overhead_s=0.0)
        slow = run_workload(fast_kmeans, DivisionOnlyPolicy(config=fast_config),
                            n_iterations=4, options=heavy)
        fast = run_workload(fast_kmeans, DivisionOnlyPolicy(config=fast_config),
                            n_iterations=4, options=light)
        assert slow.total_s > fast.total_s

    def test_final_ratio_reported(self, fast_kmeans, fast_config, fast_options):
        result = run_workload(
            fast_kmeans, DivisionOnlyPolicy(config=fast_config),
            n_iterations=10, options=fast_options,
        )
        assert result.final_ratio == pytest.approx(0.20)

    def test_iteration_count(self, fast_kmeans):
        result = run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=5)
        assert result.n_iterations == 5
        assert [m.index for m in result.iterations] == list(range(5))


class TestRunWorkloadPlumbing:
    def test_default_iterations_from_workload(self):
        w = fast_workload("lud")
        result = run_workload(w, RodiniaDefaultPolicy())
        assert result.n_iterations == w.default_iterations

    def test_meters_reset_before_run(self, fast_kmeans):
        system = make_testbed()
        system.run_for(5.0)  # pre-run activity must not leak into results
        result = run_workload(
            fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1, system=system
        )
        assert result.total_s < 5.0 + 60.0
        assert result.total_energy_j / result.total_s < 500.0

    def test_warmup_included_in_measurement(self, fast_kmeans):
        base = run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1)
        warm = run_workload(
            fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1, warmup_s=2.0
        )
        assert warm.total_s == pytest.approx(base.total_s + 2.0, rel=0.01)

    def test_negative_warmup_raises(self, fast_kmeans):
        with pytest.raises(SimulationError):
            run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=1, warmup_s=-1.0)

    def test_zero_iterations_raises(self, fast_kmeans):
        with pytest.raises(SimulationError):
            run_workload(fast_kmeans, RodiniaDefaultPolicy(), n_iterations=0)

    def test_spin_emulation_energy_below_measured(self, fast_kmeans):
        result = run_workload(fast_kmeans, BestPerformancePolicy(), n_iterations=1)
        assert result.cpu_energy_emulated_idle_spin_j < result.cpu_energy_j

    def test_options_validation(self):
        with pytest.raises(SimulationError):
            ExecutorOptions(repartition_overhead_s=-1.0)
        with pytest.raises(SimulationError):
            ExecutorOptions(iteration_timeout_s=0.0)
