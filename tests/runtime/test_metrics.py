"""Tests for the run metrics records."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.runtime.metrics import IterationMetrics, RunResult


def _iteration(i, r=0.2, tc=1.0, tg=2.0, energy=100.0):
    return IterationMetrics(
        index=i, r=r, tc=tc, tg=tg, wall_s=max(tc, tg),
        energy_j=energy, gpu_energy_j=energy * 0.6, cpu_energy_j=energy * 0.4,
    )


def _run(n=3, energy=100.0, total_s=10.0, policy="p"):
    iterations = [_iteration(i, energy=energy) for i in range(n)]
    return RunResult(
        workload="w", policy=policy, iterations=iterations,
        total_s=total_s, total_energy_j=energy * n,
        gpu_energy_j=energy * n * 0.6, cpu_energy_j=energy * n * 0.4,
    )


class TestRunResult:
    def test_average_power(self):
        assert _run().average_power_w == pytest.approx(30.0)

    def test_average_power_requires_time(self):
        with pytest.raises(SimulationError):
            _run(total_s=0.0).average_power_w

    def test_arrays(self):
        run = _run(4)
        assert run.ratios().shape == (4,)
        assert run.iteration_energies().sum() == pytest.approx(400.0)
        tc, tg = run.iteration_times()
        assert np.all(tc == 1.0) and np.all(tg == 2.0)

    def test_energy_saving_vs(self):
        a, b = _run(energy=80.0), _run(energy=100.0)
        assert a.energy_saving_vs(b) == pytest.approx(0.2)
        assert b.energy_saving_vs(a) == pytest.approx(-0.25)

    def test_gpu_energy_saving_vs(self):
        a, b = _run(energy=80.0), _run(energy=100.0)
        assert a.gpu_energy_saving_vs(b) == pytest.approx(0.2)

    def test_slowdown_vs(self):
        a, b = _run(total_s=11.0), _run(total_s=10.0)
        assert a.slowdown_vs(b) == pytest.approx(0.1)

    def test_saving_vs_empty_baseline_raises(self):
        empty = RunResult(workload="w", policy="p")
        with pytest.raises(SimulationError):
            _run().energy_saving_vs(empty)
        with pytest.raises(SimulationError):
            _run().slowdown_vs(empty)

    def test_iteration_validation(self):
        with pytest.raises(SimulationError):
            IterationMetrics(0, 0.0, 1.0, 1.0, wall_s=-1.0,
                             energy_j=1.0, gpu_energy_j=0.5, cpu_energy_j=0.5)
