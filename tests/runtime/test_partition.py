"""Tests for the work partitioner."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.runtime.partition import partition_array, partition_slices, split_units


class TestSplitUnits:
    def test_basic_split(self):
        assert split_units(1.0, 0.3) == (pytest.approx(0.3), pytest.approx(0.7))

    def test_extremes(self):
        assert split_units(1.0, 0.0) == (0.0, 1.0)
        assert split_units(1.0, 1.0) == (1.0, pytest.approx(0.0))

    def test_conservation(self):
        for r in np.linspace(0, 1, 21):
            cpu, gpu = split_units(5.0, float(r))
            assert cpu + gpu == pytest.approx(5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(PartitionError):
            split_units(-1.0, 0.5)
        with pytest.raises(PartitionError):
            split_units(1.0, 1.5)


class TestPartitionSlices:
    def test_rounding_to_nearest_row(self):
        cpu, gpu = partition_slices(10, 0.34)
        assert (cpu.stop, gpu.start) == (3, 3)

    def test_cover_everything_disjointly(self):
        for n in (0, 1, 7, 100):
            for r in (0.0, 0.01, 0.5, 0.99, 1.0):
                cpu, gpu = partition_slices(n, r)
                assert cpu.start == 0 and gpu.stop == n
                assert cpu.stop == gpu.start

    def test_tiny_share_small_array_empty_cpu(self):
        cpu, _ = partition_slices(4, 0.05)
        assert cpu.stop - cpu.start == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(PartitionError):
            partition_slices(-1, 0.5)
        with pytest.raises(PartitionError):
            partition_slices(10, -0.1)


class TestPartitionArray:
    def test_views_not_copies(self):
        arr = np.arange(10.0)
        cpu, gpu = partition_array(arr, 0.5)
        cpu[0] = 99.0
        assert arr[0] == 99.0

    def test_concatenation_roundtrip(self):
        arr = np.random.default_rng(0).normal(size=(20, 3))
        cpu, gpu = partition_array(arr, 0.35)
        assert np.array_equal(np.concatenate([cpu, gpu]), arr)
