"""Unit tests for the admission layer: buckets, queues, fair dequeue.

Everything runs on a hand-cranked clock — no sleeps, no wall time.
"""

import pytest

from repro.errors import ServiceError
from repro.service.admission import AdmissionRefused, FairTenantQueues, TokenBucket
from repro.service.config import ServiceConfig


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_then_refusal_with_exact_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        for _ in range(3):
            ok, _ = bucket.try_take()
            assert ok
        ok, retry_after = bucket.try_take()
        assert not ok
        # Empty bucket at 2 tokens/s: one token lands in 0.5 s.
        assert retry_after == pytest.approx(0.5)

    def test_refills_at_rate_and_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        for _ in range(3):
            bucket.try_take()
        clock.advance(1.0)  # 2 tokens back
        assert bucket.try_take()[0]
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]
        clock.advance(100.0)  # far past burst: capacity caps at 3
        for _ in range(3):
            assert bucket.try_take()[0]
        assert not bucket.try_take()[0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ServiceError):
            TokenBucket(rate=1.0, burst=-1.0)


def make_queues(**overrides):
    defaults = dict(
        port=0, workers=2, tenant_queue_limit=3, global_high_water=10,
        rate_per_tenant=1000.0, burst_per_tenant=1000.0,
    )
    defaults.update(overrides)
    clock = FakeClock()
    return FairTenantQueues(ServiceConfig(**defaults), clock=clock), clock


class TestFairTenantQueues:
    def test_per_tenant_bound_is_isolated(self):
        queues, _ = make_queues()
        for i in range(3):
            queues.admit("a", f"a{i}")
        with pytest.raises(AdmissionRefused) as exc:
            queues.admit("a", "a3")
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after_s > 0.0
        # Tenant b is unaffected by a's full queue.
        queues.admit("b", "b0")
        assert queues.depth("b") == 1

    def test_global_high_water_sheds_everyone(self):
        queues, _ = make_queues(tenant_queue_limit=100, global_high_water=4)
        for i in range(4):
            queues.admit(f"t{i}", i)
        with pytest.raises(AdmissionRefused) as exc:
            queues.admit("fresh-tenant", 99)
        assert exc.value.reason == "high_water"
        assert exc.value.retry_after_s > 0.0

    def test_rate_limit_refusal_carries_tenant_and_wait(self):
        queues, _ = make_queues(rate_per_tenant=1.0, burst_per_tenant=2.0)
        queues.admit("a", 1)
        queues.admit("a", 2)
        with pytest.raises(AdmissionRefused) as exc:
            queues.admit("a", 3)
        assert exc.value.reason == "rate_limited"
        assert exc.value.tenant == "a"
        assert exc.value.retry_after_s == pytest.approx(1.0)

    def test_weighted_fair_dequeue_interleaves_by_weight(self):
        queues, _ = make_queues(
            tenant_queue_limit=100,
            global_high_water=1000,
            tenant_weights={"heavy": 2.0, "light": 1.0},
        )
        for i in range(6):
            queues.admit("heavy", ("heavy", i))
        for i in range(3):
            queues.admit("light", ("light", i))
        order = [queues.take()[0] for _ in range(9)]
        # Over any window, heavy gets ~2 slots per light slot — smooth
        # WRR, not a burst of all-heavy then all-light.
        assert order.count("heavy") == 6
        first_six = order[:6]
        assert first_six.count("light") >= 2, order

    def test_fifo_within_tenant(self):
        queues, _ = make_queues()
        for i in range(3):
            queues.admit("a", i)
        assert [queues.take() for _ in range(3)] == [0, 1, 2]
        assert queues.take() is None

    def test_idle_tenant_does_not_bank_wrr_credit(self):
        queues, _ = make_queues(tenant_queue_limit=100)
        queues.admit("a", "a0")
        assert queues.take() == "a0"
        # a drained; its accumulated credit must not give it priority
        # over b when both return later.
        for item in ("b0", "b1"):
            queues.admit("b", item)
        queues.admit("a", "a1")
        first_two = {queues.take(), queues.take()}
        assert "b0" in first_two

    def test_drain_expired_removes_only_flagged(self):
        queues, _ = make_queues()
        for i in range(3):
            queues.admit("a", i)
        removed = queues.drain_expired(lambda item: item == 1)
        assert removed == [1]
        assert queues.depth() == 2
        assert [queues.take(), queues.take()] == [0, 2]

    def test_drain_all_empties_everything(self):
        queues, _ = make_queues()
        queues.admit("a", 1)
        queues.admit("b", 2)
        assert sorted(queues.drain_all()) == [1, 2]
        assert queues.depth() == 0

    def test_shed_retry_after_tracks_service_rate(self):
        queues, _ = make_queues(workers=2, global_high_water=4,
                                tenant_queue_limit=100)
        for i in range(4):
            queues.admit("a", i)
        before = queues.shed_retry_after_s()
        for _ in range(20):
            queues.observe_service_time(4.0)  # jobs got much slower
        assert queues.shed_retry_after_s() > before
