"""Unit tests for the degradation-ladder circuit breaker (fake clock)."""

from repro.service.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_breaker(**kw):
    clock = FakeClock()
    defaults = dict(cache_only_after=2, hard_open_after=4, cooldown_s=5.0)
    defaults.update(kw)
    return CircuitBreaker(clock=clock, **defaults), clock


class TestLadder:
    def test_walks_closed_to_cache_only_to_open(self):
        breaker, _ = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.CACHE_ONLY
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.transitions == [
            ("closed", "cache_only"), ("cache_only", "open"),
        ]

    def test_success_resets_everything(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CACHE_ONLY
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.cooldown_remaining_s() == 0.0

    def test_success_interleaved_keeps_closed(self):
        breaker, _ = make_breaker()
        for _ in range(10):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


class TestHalfOpenProbe:
    def test_no_execution_during_cooldown(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow_execution()
        clock.now = 4.9
        assert not breaker.allow_execution()

    def test_single_canary_after_cooldown(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow_execution()     # the canary
        assert not breaker.allow_execution()  # only one out at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow_execution()

    def test_failed_canary_rearms_cooldown_and_escalates(self):
        breaker, clock = make_breaker(cache_only_after=2, hard_open_after=3)
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow_execution()
        breaker.record_failure()  # canary died: escalate toward OPEN
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_execution()
        clock.now = 5.1
        assert not breaker.allow_execution()  # new cooldown re-armed
        clock.now = 10.0
        assert breaker.allow_execution()

    def test_release_probe_unsticks_a_verdictless_canary(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow_execution()
        # Canary got cancelled/expired: no success, no failure.
        breaker.release_probe()
        assert breaker.allow_execution()  # a new canary may go out


class TestServingGates:
    def test_cache_serves_in_cache_only_but_not_open(self):
        breaker, _ = make_breaker(cache_only_after=1, hard_open_after=2)
        assert breaker.allow_cache_serve()
        breaker.record_failure()
        assert breaker.state is BreakerState.CACHE_ONLY
        assert breaker.allow_cache_serve()
        assert breaker.allow_enqueue()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow_cache_serve()
        assert not breaker.allow_enqueue()
