"""Chaos suite: the daemon under deliberately hostile conditions.

The acceptance contract (ISSUE 6): under worker SIGKILL, queue
overflow, slow clients, and deadline storms the daemon never loses or
duplicates a job result (journal-verified), sheds with 429 +
Retry-After instead of crashing, serves cache hits in cache-only
breaker mode, and a drain-restart cycle resumes journaled in-flight
jobs byte-identically.

These tests use spawn-isolated workers where process-level violence is
the point, and threaded workers where only scheduling behavior matters.
"""

import hashlib
import os
import signal
import time

import pytest

from repro.cache import ResultCache
from repro.harness.journal import read_journal
from repro.service.breaker import BreakerState
from repro.service.config import ServiceConfig
from repro.service.models import parse_request
from repro.service.testing import ServiceThread


def journal_events(run_dir):
    return read_journal(os.path.join(run_dir, "journal.jsonl"))


def assert_no_lost_or_duplicated(records):
    """Every submitted job has at most one success-type event, and every
    success-type event belongs to a submitted job."""
    submitted = [r["job"] for r in records if r["event"] == "job_submitted"]
    assert len(submitted) == len(set(submitted)), "duplicate submission ids"
    completions = {}
    for r in records:
        if r["event"] in ("job_success", "job_cached"):
            completions[r["job"]] = completions.get(r["job"], 0) + 1
    for job, count in completions.items():
        assert count == 1, f"{job} completed {count} times"
        assert job in submitted, f"{job} completed but never submitted"


class TestWorkerSigkill:
    def test_sigkill_mid_job_retries_without_losing_the_result(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, isolate=True, job_timeout_s=120.0,
            retry_max_attempts=3, retry_base_backoff_s=0.01,
            retry_max_backoff_s=0.05, retry_jitter_seed=7,
            breaker_cache_only_after=5, breaker_hard_open_after=10,
        )
        run_dir = str(tmp_path / "run")
        with ServiceThread(config, run_dir) as svc:
            client = svc.client()
            status, body, _ = client.submit(workload="hotspot", iterations=1,
                                            time_scale=0.02)
            assert status == 202
            job_id = body["job_id"]
            # The spawn window (fresh interpreter importing repro) keeps
            # the child visible in running_procs for well over a second:
            # kill it there, squarely mid-job.
            deadline = time.monotonic() + 30.0
            pid = None
            while time.monotonic() < deadline:
                proc = svc.service.running_procs.get(job_id)
                if proc is not None and proc.pid:
                    pid = proc.pid
                    break
                time.sleep(0.005)
            assert pid is not None, "job never reached a worker process"
            os.kill(pid, signal.SIGKILL)

            done = client.wait(job_id, timeout_s=120)
            assert done["phase"] == "done"
            assert done["attempts"] >= 2  # the kill cost one attempt
            assert done["result"]["total_energy_j"] > 0.0
            client.close()
        records = journal_events(run_dir)
        assert_no_lost_or_duplicated(records)
        starts = [r for r in records if r["event"] == "job_start"
                  and r["job"] == job_id]
        assert len(starts) >= 2


class TestBreakerLadder:
    def test_cache_only_serves_hits_then_open_rejects_all(self, tmp_path):
        # job_timeout far below spawn overhead: every execution is a
        # deterministic worker-level failure (timeout kill).
        config = ServiceConfig(
            port=0, workers=1, isolate=True, job_timeout_s=0.05,
            retry_max_attempts=1,
            breaker_cache_only_after=2, breaker_hard_open_after=3,
            breaker_cooldown_s=300.0,  # no probes during the test
            rate_per_tenant=1000.0, burst_per_tenant=1000.0,
        )
        cache = ResultCache(str(tmp_path / "cache"))
        warm = parse_request({"workload": "kmeans", "iterations": 1,
                              "time_scale": 0.01}, config)
        cache.put(warm.cache_key, {"payload": {"workload": "kmeans",
                                               "total_energy_j": 42.0}})
        run_dir = str(tmp_path / "run")
        with ServiceThread(config, run_dir, cache=cache) as svc:
            client = svc.client()
            # Two distinct submissions -> two worker failures -> CACHE_ONLY.
            for i in (2, 3):
                status, body, _ = client.submit(workload="hotspot",
                                                iterations=i, time_scale=0.01)
                assert status == 202
                failed = client.wait(body["job_id"], timeout_s=60)
                assert failed["phase"] == "failed"
                assert "timeout" in failed["error"]
            assert svc.service.breaker.state is BreakerState.CACHE_ONLY

            # Degraded, not down: identical warm submission still served.
            status, body, _ = client.submit(workload="kmeans", iterations=1,
                                            time_scale=0.01)
            assert status == 200
            assert body["served_from_cache"] is True
            assert body["result"]["total_energy_j"] == 42.0
            # A cache miss is refused with Retry-After, not queued to rot.
            status, body, headers = client.submit(workload="srad",
                                                  iterations=5,
                                                  time_scale=0.01)
            assert status == 503
            assert body["error"] == "cache_only_miss"
            assert "retry-after" in headers
            # Not ready, but alive.
            assert client.readyz()[0] == 503
            assert client.healthz()[0] == 200

            # One more failure: the ladder bottoms out at OPEN, where
            # even cache hits are refused.
            svc.call(lambda s: s.breaker.record_failure())
            assert svc.service.breaker.state is BreakerState.OPEN
            status, body, _ = client.submit(workload="kmeans", iterations=1,
                                            time_scale=0.01)
            assert status == 503
            assert body["error"] == "breaker_open"
            client.close()
        assert_no_lost_or_duplicated(journal_events(run_dir))

    def test_recovery_probe_closes_breaker_after_success(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, isolate=False, job_timeout_s=60.0,
            breaker_cache_only_after=1, breaker_hard_open_after=10,
            breaker_cooldown_s=0.1,
        )
        with ServiceThread(config, str(tmp_path / "run")) as svc:
            client = svc.client()
            svc.call(lambda s: s.breaker.record_failure())
            assert svc.service.breaker.state is BreakerState.CACHE_ONLY
            time.sleep(0.15)  # cooldown elapses -> next job is the canary
            status, body, _ = client.submit(workload="kmeans", iterations=1,
                                            time_scale=0.01)
            assert status in (200, 202)
            if status == 202:
                done = client.wait(body["job_id"], timeout_s=60)
                assert done["phase"] == "done"
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if svc.service.breaker.state is BreakerState.CLOSED:
                    break
                time.sleep(0.01)
            assert svc.service.breaker.state is BreakerState.CLOSED
            client.close()


class TestDeadlineStorm:
    def test_queued_jobs_expire_without_poisoning_the_service(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, isolate=False, job_timeout_s=60.0,
            rate_per_tenant=10_000.0, burst_per_tenant=10_000.0,
            tenant_queue_limit=64,
        )
        run_dir = str(tmp_path / "run")
        with ServiceThread(config, run_dir) as svc:
            client = svc.client()
            # Pin the single worker with real work...
            status, pinned, _ = client.submit(workload="hotspot",
                                              iterations=4, time_scale=0.05)
            assert status == 202
            # ... then storm it with jobs that cannot possibly make it.
            storm = []
            for i in range(10):
                status, body, _ = client.submit(
                    workload="kmeans", iterations=10 + i, time_scale=0.01,
                    deadline_s=0.15)
                assert status == 202
                storm.append(body["job_id"])
            phases = [client.wait(job_id, timeout_s=30)["phase"]
                      for job_id in storm]
            assert phases.count("expired") >= 8, phases
            # The pinned job and the service itself are unharmed.
            assert client.wait(pinned["job_id"], timeout_s=60)["phase"] == "done"
            status, body, _ = client.submit(workload="kmeans", iterations=2,
                                            time_scale=0.01)
            assert status in (200, 202)
            client.close()
        records = journal_events(run_dir)
        assert_no_lost_or_duplicated(records)
        expired = [r for r in records if r["event"] == "job_expired"]
        assert len(expired) >= 8
        assert all(r["where"] in ("queued", "running") for r in expired)

    def test_deadline_kills_in_flight_job(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, isolate=True, job_timeout_s=120.0,
            breaker_cache_only_after=10, breaker_hard_open_after=20,
        )
        run_dir = str(tmp_path / "run")
        with ServiceThread(config, run_dir) as svc:
            client = svc.client()
            # Deadline shorter than the spawn window: the job will be
            # mid-flight (process alive) when it expires.
            status, body, _ = client.submit(workload="hotspot", iterations=4,
                                            time_scale=0.05, deadline_s=0.4)
            assert status == 202
            done = client.wait(body["job_id"], timeout_s=60)
            assert done["phase"] == "expired"
            assert "result" not in done
            client.close()
        records = journal_events(run_dir)
        expired = [r for r in records if r["event"] == "job_expired"]
        assert len(expired) == 1
        # The breaker must not count a deadline kill as backend illness.
        assert not any(r["event"] == "job_failed" for r in records)


class TestDrainRestartResume:
    def test_unfinished_jobs_resume_byte_identically(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=1, isolate=True, job_timeout_s=120.0,
            drain_timeout_s=0.1,  # abandon quickly: that's the point
            rate_per_tenant=1000.0, burst_per_tenant=1000.0,
        )
        run_dir = str(tmp_path / "run")
        cache = ResultCache(str(tmp_path / "cache"))

        svc = ServiceThread(config, run_dir, cache=cache).start()
        client = svc.client()
        jobs = []
        for i in range(3):
            status, body, _ = client.submit(workload="kmeans",
                                            iterations=1 + i,
                                            time_scale=0.02)
            assert status == 202
            jobs.append(body["job_id"])
        # Wait for the first success, then drain with work outstanding.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            records = journal_events(run_dir)
            if any(r["event"] == "job_success" for r in records):
                break
            time.sleep(0.02)
        client.close()
        svc.stop()

        records = journal_events(run_dir)
        done_first = {r["job"]: r for r in records
                      if r["event"] == "job_success"}
        assert done_first, "first incarnation finished nothing"
        assert len(done_first) < 3, "nothing left to resume"
        first_bytes = {
            job: open(os.path.join(run_dir, "artifacts", f"{job}.json"),
                      "rb").read()
            for job in done_first
        }

        # Restart on the same run directory: journaled unfinished jobs
        # must resume and finish; finished ones must not re-run.
        svc2 = ServiceThread(config, run_dir, cache=cache).start()
        client2 = svc2.client()
        for job_id in jobs:
            final = client2.wait(job_id, timeout_s=120)
            assert final["phase"] == "done", (job_id, final)
        client2.close()
        svc2.stop()

        records = journal_events(run_dir)
        assert_no_lost_or_duplicated(records)
        assert any(r["event"] == "service_resumed" for r in records)
        for job, blob in first_bytes.items():
            path = os.path.join(run_dir, "artifacts", f"{job}.json")
            assert open(path, "rb").read() == blob, \
                f"{job} was re-run after restart (bytes changed)"
            assert done_first[job]["sha256"] == \
                hashlib.sha256(blob).hexdigest()

    def test_restart_with_corrupt_artifact_reruns_the_job(self, tmp_path):
        config = ServiceConfig(port=0, workers=1, isolate=True,
                               job_timeout_s=120.0, drain_timeout_s=5.0)
        run_dir = str(tmp_path / "run")
        svc = ServiceThread(config, run_dir).start()
        client = svc.client()
        status, body, _ = client.submit(workload="kmeans", iterations=1,
                                        time_scale=0.02)
        job_id = body["job_id"]
        assert client.wait(job_id, timeout_s=120)["phase"] == "done"
        client.close()
        svc.stop()

        # Bit-rot the artifact: recovery's hash check must catch it.
        artifact = os.path.join(run_dir, "artifacts", f"{job_id}.json")
        with open(artifact, "ab") as handle:
            handle.write(b" \n")

        svc2 = ServiceThread(config, run_dir).start()
        client2 = svc2.client()
        final = client2.wait(job_id, timeout_s=120)
        assert final["phase"] == "done"
        client2.close()
        svc2.stop()
        # The re-run produced a verifiable artifact again.
        records = journal_events(run_dir)
        successes = [r for r in records if r["event"] == "job_success"
                     and r["job"] == job_id]
        assert len(successes) == 2  # original + legitimate re-run
        with open(artifact, "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == \
                successes[-1]["sha256"]
