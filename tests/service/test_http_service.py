"""End-to-end HTTP tests against a live in-process daemon.

These run the real asyncio front-end + daemon on a background thread
with ``isolate=False`` (threaded workers — no spawn overhead), so the
whole file stays fast while still exercising every HTTP surface.
Spawn-isolated behavior (kills, timeouts, breaker trips) lives in
``test_chaos.py``.
"""

import json
import socket
import time

import pytest

from repro.cache import ResultCache
from repro.service.config import ServiceConfig
from repro.service.testing import ServiceThread

FAST_JOB = dict(workload="kmeans", policy="greengpu",
                iterations=1, time_scale=0.01)


def make_config(**overrides):
    defaults = dict(port=0, workers=2, isolate=False, job_timeout_s=60.0,
                    slow_client_timeout_s=0.4, keepalive_timeout_s=2.0,
                    drain_timeout_s=10.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("service")
    cache = ResultCache(str(tmp / "cache"))
    with ServiceThread(make_config(), str(tmp / "run"), cache=cache) as svc:
        yield svc


@pytest.fixture()
def client(service):
    c = service.client()
    yield c
    c.close()


class TestSubmitAndResult:
    def test_submit_runs_and_returns_result(self, client):
        status, body, _ = client.submit(**FAST_JOB)
        assert status == 202
        assert body["phase"] == "queued"
        done = client.wait(body["job_id"], timeout_s=60)
        assert done["phase"] == "done"
        assert done["result"]["workload"] == "kmeans"
        assert done["result"]["total_energy_j"] > 0.0

    def test_identical_resubmission_served_from_cache(self, client):
        status, first, _ = client.submit(**FAST_JOB)
        assert status in (200, 202)
        if status == 202:
            client.wait(first["job_id"], timeout_s=60)
        status, body, _ = client.submit(**FAST_JOB)
        assert status == 200
        assert body["served_from_cache"] is True
        assert body["phase"] == "done"
        assert body["result"]["total_energy_j"] > 0.0

    def test_unknown_job_is_404(self, client):
        status, body, _ = client.status("job-999999")
        assert status == 404

    def test_malformed_json_is_400(self, client):
        status, body, _ = client.request("POST", "/jobs")
        # No body at all -> empty submission -> valid defaults; send junk.
        conn_status, conn_body, _ = client.request("POST", "/jobs", body=None)
        raw = client._connection()
        raw.request("POST", "/jobs", body=b"{not json",
                    headers={"Content-Type": "application/json"})
        response = raw.getresponse()
        assert response.status == 400
        assert b"JSON" in response.read()

    def test_unknown_workload_is_400(self, client):
        status, body, _ = client.submit(workload="no-such-kernel")
        assert status == 400
        assert "unknown workload" in body["error"]

    def test_unknown_route_is_404_and_bad_method_405(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("PUT", "/jobs/job-000001")[0] == 405


class TestOpsSurfaces:
    def test_healthz_always_answers(self, client):
        status, body, _ = client.healthz()
        assert status == 200
        assert body["breaker"] == "closed"
        assert {"queue_depth", "running", "workers"} <= set(body)

    def test_readyz_ready_when_healthy(self, client):
        status, body, _ = client.readyz()
        assert status == 200 and body["ready"] is True

    def test_metrics_exposes_prometheus_text(self, client):
        client.submit(**FAST_JOB)
        text = client.metrics_text()
        assert "# TYPE" in text
        assert "service_submissions_total" in text
        assert "service_admission_latency_s" in text

    def test_keepalive_reuses_one_connection(self, client):
        conn_before = client._connection()
        client.healthz()
        client.healthz()
        assert client._connection() is conn_before


class TestBackpressure:
    def test_rate_limit_sheds_with_retry_after(self, tmp_path):
        config = make_config(rate_per_tenant=5.0, burst_per_tenant=3.0,
                             workers=1)
        with ServiceThread(config, str(tmp_path / "run")) as svc:
            client = svc.client()
            seen_429 = None
            for i in range(10):
                status, body, headers = client.submit(
                    tenant="flooder", iterations=1 + i, **{
                        k: v for k, v in FAST_JOB.items() if k != "iterations"})
                if status == 429:
                    seen_429 = (body, headers)
                    break
            assert seen_429 is not None, "bucket never emptied"
            body, headers = seen_429
            assert body["error"] == "rate_limited"
            assert "retry-after" in headers
            assert int(headers["retry-after"]) >= 1
            client.close()

    def test_queue_overflow_sheds_that_tenant_only(self, tmp_path):
        config = make_config(workers=1, tenant_queue_limit=2,
                             rate_per_tenant=10_000.0,
                             burst_per_tenant=10_000.0)
        with ServiceThread(config, str(tmp_path / "run")) as svc:
            client = svc.client()
            # A slow-ish job pins the single worker...
            client.submit(workload="hotspot", iterations=4, time_scale=0.05,
                          tenant="a")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _, health, _ = client.healthz()
                if health["running"] >= 1:
                    break
                time.sleep(0.01)
            # ... then tenant a fills its bounded queue.
            statuses = []
            for i in range(6):
                status, body, headers = client.submit(
                    workload="kmeans", iterations=2 + i, time_scale=0.01,
                    tenant="a")
                statuses.append(status)
                if status == 429:
                    assert body["error"] in ("queue_full", "high_water")
                    assert "retry-after" in headers
            assert 429 in statuses
            # Tenant b still gets in.
            status, _, _ = client.submit(workload="kmeans", iterations=60,
                                         time_scale=0.01, tenant="b")
            assert status == 202
            client.close()


class TestSlowClients:
    def test_stalled_request_times_out_with_408(self, service):
        sock = socket.create_connection(("127.0.0.1", service.port), timeout=5)
        try:
            sock.sendall(b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
            # ... and then never send the body.
            sock.settimeout(5.0)
            data = sock.recv(4096)
            assert b"408" in data.split(b"\r\n", 1)[0]
        finally:
            sock.close()

    def test_stalled_client_does_not_block_others(self, service, client):
        stalled = socket.create_connection(("127.0.0.1", service.port),
                                           timeout=5)
        try:
            stalled.sendall(b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
            status, _, _ = client.healthz()  # concurrent healthy client
            assert status == 200
        finally:
            stalled.close()

    def test_oversized_body_is_413(self, service):
        sock = socket.create_connection(("127.0.0.1", service.port), timeout=5)
        try:
            sock.sendall(b"POST /jobs HTTP/1.1\r\n"
                         b"Content-Length: 999999999\r\n\r\n")
            data = sock.recv(4096)
            assert b"413" in data.split(b"\r\n", 1)[0]
        finally:
            sock.close()

    def test_garbage_request_line_is_400(self, service):
        sock = socket.create_connection(("127.0.0.1", service.port), timeout=5)
        try:
            sock.sendall(b"GARBAGE\r\n\r\n")
            data = sock.recv(4096)
            assert b"400" in data.split(b"\r\n", 1)[0]
        finally:
            sock.close()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        config = make_config(workers=1, rate_per_tenant=10_000.0,
                             burst_per_tenant=10_000.0)
        with ServiceThread(config, str(tmp_path / "run")) as svc:
            client = svc.client()
            client.submit(workload="hotspot", iterations=4, time_scale=0.05)
            status, queued, _ = client.submit(workload="kmeans",
                                              iterations=50, time_scale=0.01)
            assert status == 202
            status, body, _ = client.cancel(queued["job_id"])
            assert status == 200
            assert body["phase"] == "cancelled"
            status, body, _ = client.status(queued["job_id"])
            assert body["phase"] == "cancelled"
            client.close()

    def test_cancel_finished_job_is_409(self, client):
        status, body, _ = client.submit(**FAST_JOB)
        job_id = body["job_id"]
        if status == 202:
            client.wait(job_id, timeout_s=60)
        status, body, _ = client.cancel(job_id)
        assert status == 409

    def test_cancel_unknown_job_is_404(self, client):
        assert client.cancel("job-424242")[0] == 404


class TestDraining:
    def test_draining_service_rejects_with_503(self, tmp_path):
        config = make_config(drain_timeout_s=5.0)
        svc = ServiceThread(config, str(tmp_path / "run")).start()
        client = svc.client()
        try:
            svc.call(lambda s: setattr(s, "draining", True))
            status, body, headers = client.submit(**FAST_JOB)
            assert status == 503
            assert body["error"] == "draining"
            assert "retry-after" in headers
            status, body, _ = client.readyz()
            assert status == 503 and body["ready"] is False
        finally:
            client.close()
            svc.stop()
