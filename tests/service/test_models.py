"""Unit tests for submission parsing and the job record model."""

import pytest

from repro.errors import ServiceError
from repro.service.config import ServiceConfig
from repro.service.models import (
    JobPhase,
    JobRecord,
    parse_request,
    request_from_dict,
)

CONFIG = ServiceConfig(port=0)


class TestParseRequest:
    def test_defaults_fill_in(self):
        request = parse_request({}, CONFIG)
        assert request.workload == "kmeans"
        assert request.policy == "greengpu"
        assert request.tenant == "public"
        assert request.cache_key is not None

    def test_alias_canonicalized_to_shared_cache_key(self):
        a = parse_request({"workload": "PF"}, CONFIG)
        b = parse_request({"workload": "pathfinder"}, CONFIG)
        assert a.workload == b.workload == "pathfinder"
        assert a.cache_key == b.cache_key

    def test_distinct_submissions_get_distinct_keys(self):
        a = parse_request({"iterations": 2}, CONFIG)
        b = parse_request({"iterations": 3}, CONFIG)
        assert a.cache_key != b.cache_key

    def test_tenant_does_not_affect_cache_key(self):
        # The result of a simulation is tenant-independent; sharing the
        # content address across tenants is what makes a warm cache warm.
        a = parse_request({"tenant": "team-a"}, CONFIG)
        b = parse_request({"tenant": "team-b"}, CONFIG)
        assert a.cache_key == b.cache_key

    @pytest.mark.parametrize("body,fragment", [
        ([], "JSON object"),
        ({"workload": "no-such-kernel"}, "unknown workload"),
        ({"workload": 7}, "workload must be a string"),
        ({"policy": "no-such-policy"}, "unknown policy"),
        ({"tenant": ""}, "tenant"),
        ({"tenant": "x" * 65}, "tenant"),
        ({"iterations": 0}, "iterations"),
        ({"iterations": 10_000}, "iterations"),
        ({"iterations": True}, "iterations"),
        ({"time_scale": 0.0}, "time_scale"),
        ({"time_scale": 99.0}, "time_scale"),
        ({"deadline_s": -1.0}, "deadline_s"),
        ({"deadline_s": "soon"}, "deadline_s"),
    ])
    def test_rejects_malformed(self, body, fragment):
        with pytest.raises(ServiceError, match=fragment):
            parse_request(body, CONFIG)

    def test_deadline_clamped_to_ceiling(self):
        request = parse_request({"deadline_s": 10_000_000.0}, CONFIG)
        assert request.deadline_s == CONFIG.max_deadline_s

    def test_journal_round_trip_is_identity(self):
        request = parse_request(
            {"workload": "srad", "policy": "scaling-only", "iterations": 3,
             "time_scale": 0.1, "tenant": "t", "deadline_s": 9.0},
            CONFIG,
        )
        assert request_from_dict(request.as_dict()) == request


class TestJobRecord:
    def test_expiry_against_monotonic_deadline(self):
        request = parse_request({"deadline_s": 5.0}, CONFIG)
        record = JobRecord(job_id="job-000001", request=request)
        record.deadline_monotonic = 100.0
        assert not record.expired(99.9)
        assert record.expired(100.0)

    def test_no_deadline_never_expires(self):
        record = JobRecord(job_id="j", request=parse_request({}, CONFIG))
        assert not record.expired(1e12)

    def test_status_dict_shape(self):
        record = JobRecord(job_id="j", request=parse_request({}, CONFIG))
        status = record.status_dict()
        assert status["phase"] == "queued"
        assert "result" not in status and "error" not in status
        record.phase = JobPhase.DONE
        record.result = {"total_energy_j": 1.0}
        assert record.status_dict()["result"] == {"total_energy_j": 1.0}
