"""End-to-end distributed tracing through the served-job pipeline.

Boots the real daemon with a telemetry directory, submits over real
HTTP, and asserts the headline property of the tracing tentpole: the
merged event stream stitches into ONE trace, every worker span
reachable from the admitting HTTP request's root span.  Also covers
the wire surfaces (traceparent accept/echo), the Chrome-trace export,
and the SLO gauges on /metrics.
"""

import json
import os

import pytest

from repro.service.config import ServiceConfig
from repro.service.testing import ServiceThread
from repro.telemetry.exporters import (
    CHROME_TRACE_NAME,
    EVENTS_NAME,
    read_events,
)
from repro.telemetry.tracecontext import TraceContext
from repro.telemetry.traceview import stitch_spans

FAST_JOB = dict(workload="kmeans", policy="greengpu",
                iterations=1, time_scale=0.01)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One served job end-to-end; yields (telemetry_dir, submit response)."""
    tmp = tmp_path_factory.mktemp("traced")
    telemetry_dir = str(tmp / "tel")
    config = ServiceConfig(port=0, workers=1, isolate=False,
                           telemetry_dir=telemetry_dir,
                           drain_timeout_s=10.0)
    with ServiceThread(config, str(tmp / "run")) as svc:
        client = svc.client()
        status, body, headers = client.submit(**FAST_JOB)
        assert status == 202
        done = client.wait(body["job_id"], timeout_s=60)
        assert done["phase"] == "done"
        metrics = client.metrics_text()
        client.close()
    yield telemetry_dir, body, headers, metrics


class TestStitchedTrace:
    def test_single_connected_trace(self, traced_run):
        telemetry_dir, _, _, _ = traced_run
        events = read_events(os.path.join(telemetry_dir, EVENTS_NAME))
        roots = stitch_spans(events)
        assert len(roots) == 1, [r.name for r in roots]
        root = roots[0]
        assert root.name == "http_request"

        names = set()

        def walk(node):
            names.add(node.name)
            for child in node.children:
                walk(child)
        walk(root)
        # Daemon-side job spans AND the worker's own simulation spans
        # all hang off the one HTTP root: the stitch crossed the
        # service -> executor -> run_workload boundary.
        assert {"service_job", "service_queue_wait", "service_execute",
                "run", "iteration"} <= names

    def test_worker_spans_share_the_trace_id(self, traced_run):
        telemetry_dir, _, _, _ = traced_run
        events = read_events(os.path.join(telemetry_dir, EVENTS_NAME))
        trace_ids = {e["trace_id"] for e in events
                     if e.get("type") == "span" and e.get("trace_id")}
        assert len(trace_ids) == 1

    def test_traceparent_echoed_and_statused(self, traced_run):
        _, body, headers, _ = traced_run
        echoed = TraceContext.parse(headers.get("traceparent"))
        assert echoed is not None
        statused = TraceContext.parse(body.get("traceparent"))
        assert statused is not None
        assert statused.span_id == echoed.span_id


class TestChromeTraceExport:
    def test_trace_json_perfetto_shape(self, traced_run):
        telemetry_dir, _, _, _ = traced_run
        path = os.path.join(telemetry_dir, CHROME_TRACE_NAME)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["ts"] >= 0.0 and event["dur"] > 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_worker_spans_have_their_own_process_lane(self, traced_run):
        telemetry_dir, body, _, _ = traced_run
        path = os.path.join(telemetry_dir, CHROME_TRACE_NAME)
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        meta = {e["args"]["name"]: e["pid"]
                for e in data["traceEvents"] if e["ph"] == "M"}
        assert body["job_id"] in meta


class TestSloSurface:
    def test_slo_gauges_on_metrics(self, traced_run):
        _, _, _, metrics = traced_run
        assert 'slo_compliance{slo="span-success"}' in metrics
        assert 'slo_burn_rate{slo="span-success",window="run"}' in metrics
        assert 'slo_violated{slo="deadline-hit-rate"}' in metrics

    def test_slo_check_passes_on_the_run(self, traced_run):
        telemetry_dir, _, _, _ = traced_run
        from repro.telemetry.slo import (
            check_slos,
            evaluate_directory,
            parse_fail_on,
        )

        results = evaluate_directory(telemetry_dir)
        deadline = next(r for r in results
                        if r.spec.name == "deadline-hit-rate")
        assert deadline.compliance == pytest.approx(1.0)
        assert check_slos(results,
                          parse_fail_on(["violations=0,burn=14"])) == []


class TestRecoveryKeepsTrace:
    def test_journal_round_trips_traceparent(self, tmp_path):
        """A journaled trace position survives daemon recovery."""
        telemetry_dir = str(tmp_path / "tel")
        config = ServiceConfig(port=0, workers=1, isolate=False,
                               telemetry_dir=telemetry_dir,
                               drain_timeout_s=5.0)
        run_dir = str(tmp_path / "run")
        with ServiceThread(config, run_dir) as svc:
            client = svc.client()
            _, body, _ = client.submit(**FAST_JOB)
            client.wait(body["job_id"], timeout_s=60)
            client.close()
        with ServiceThread(config, run_dir) as svc:
            client = svc.client()
            status, recovered, _ = client.status(body["job_id"])
            client.close()
        assert status == 200
        assert recovered.get("traceparent") == body.get("traceparent")
