"""Tests for kernel/transfer activities and the activity queue."""

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.sim.activity import (
    ActivityQueue,
    KernelActivity,
    PhaseDemand,
    TransferActivity,
)


class TestPhaseDemand:
    def test_scaled(self):
        d = PhaseDemand(flops=10.0, bytes=4.0, stall_s=2.0)
        s = d.scaled(0.5)
        assert (s.flops, s.bytes, s.stall_s) == (5.0, 2.0, 1.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(WorkloadError):
            PhaseDemand(1.0, 1.0).scaled(-1.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(WorkloadError):
            PhaseDemand(-1.0, 0.0)
        with pytest.raises(WorkloadError):
            PhaseDemand(0.0, 0.0, stall_s=-1.0)

    def test_intensity(self):
        assert PhaseDemand(10.0, 4.0).intensity == 2.5
        assert PhaseDemand(10.0, 0.0).intensity == float("inf")


class TestKernelActivity:
    def test_requires_phases(self):
        with pytest.raises(WorkloadError):
            KernelActivity([])

    def test_phase_progression(self):
        k = KernelActivity([PhaseDemand(1.0, 0.0), PhaseDemand(2.0, 0.0)])
        assert not k.done
        assert k.current_phase.flops == 1.0
        k.advance_fraction(1.0)
        assert k.current_phase.flops == 2.0
        k.advance_fraction(0.5)
        assert k.phase_fraction == pytest.approx(0.5)
        k.advance_fraction(0.5)
        assert k.done

    def test_partial_advances_accumulate(self):
        k = KernelActivity([PhaseDemand(1.0, 0.0)])
        for _ in range(4):
            k.advance_fraction(0.25)
        assert k.done

    def test_overshoot_raises(self):
        k = KernelActivity([PhaseDemand(1.0, 0.0)])
        with pytest.raises(SimulationError):
            k.advance_fraction(1.5)

    def test_advance_after_done_raises(self):
        k = KernelActivity([PhaseDemand(1.0, 0.0)])
        k.advance_fraction(1.0)
        with pytest.raises(SimulationError):
            k.advance_fraction(0.1)

    def test_current_phase_after_done_raises(self):
        k = KernelActivity([PhaseDemand(1.0, 0.0)])
        k.advance_fraction(1.0)
        with pytest.raises(SimulationError):
            _ = k.current_phase

    def test_totals(self):
        k = KernelActivity([PhaseDemand(1.0, 2.0), PhaseDemand(3.0, 4.0)])
        assert k.total_flops == 4.0
        assert k.total_bytes == 6.0


class TestTransferActivity:
    def test_advance_to_completion(self):
        t = TransferActivity(1.0, bytes_=100.0)
        t.advance_time(0.4)
        assert not t.done
        t.advance_time(0.6)
        assert t.done

    def test_overshoot_raises(self):
        t = TransferActivity(1.0)
        with pytest.raises(SimulationError):
            t.advance_time(2.0)

    def test_zero_duration_is_done(self):
        assert TransferActivity(0.0).done

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            TransferActivity(-1.0)


class TestActivityQueue:
    def test_fifo_order(self):
        q = ActivityQueue()
        a = TransferActivity(1.0, label="a")
        b = TransferActivity(1.0, label="b")
        q.push(a)
        q.push(b)
        assert q.head is a
        a.advance_time(1.0)
        assert q.head is b

    def test_head_skips_done(self):
        q = ActivityQueue()
        done = TransferActivity(0.0)
        live = TransferActivity(1.0)
        q.push(done)
        q.push(live)
        assert q.head is live

    def test_empty_queue(self):
        q = ActivityQueue()
        assert q.head is None
        assert not q.busy
        assert len(q) == 0

    def test_len_counts_unfinished(self):
        q = ActivityQueue()
        q.push(TransferActivity(0.0))
        q.push(TransferActivity(1.0))
        q.push(TransferActivity(2.0))
        assert len(q) == 2

    def test_clear(self):
        q = ActivityQueue()
        q.push(TransferActivity(1.0))
        q.clear()
        assert not q.busy
