"""Tests for the PCIe bus transfer model."""

import pytest

from repro.errors import ConfigError
from repro.sim.bus import PcieBus


@pytest.fixture
def bus():
    return PcieBus(bandwidth=3.0e9, latency_s=10.0e-6)


class TestTransferTime:
    def test_zero_bytes_zero_time(self, bus):
        assert bus.transfer_time(0.0) == 0.0

    def test_latency_plus_bandwidth(self, bus):
        assert bus.transfer_time(3.0e9) == pytest.approx(1.0 + 10e-6)

    def test_small_transfer_dominated_by_latency(self, bus):
        t = bus.transfer_time(1.0)
        assert t == pytest.approx(10e-6, rel=1e-3)

    def test_monotone_in_size(self, bus):
        assert bus.transfer_time(2e6) > bus.transfer_time(1e6)

    def test_rejects_negative_size(self, bus):
        with pytest.raises(ConfigError):
            bus.transfer_time(-1.0)


class TestConstruction:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            PcieBus(bandwidth=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            PcieBus(bandwidth=1.0, latency_s=-1.0)


class TestMakeTransfer:
    def test_activity_matches_time(self, bus):
        transfer = bus.make_transfer(6.0e9, label="h2d")
        assert transfer.remaining_s == pytest.approx(bus.transfer_time(6.0e9))
        assert transfer.bytes == 6.0e9
        assert transfer.label == "h2d"

    def test_zero_byte_transfer_done_immediately(self, bus):
        assert bus.make_transfer(0.0).done
