"""Tests pinning the calibrated testbed to its documented anchors."""

import pytest

from repro.sim.calibration import (
    default_testbed_config,
    geforce_8800_gtx_spec,
    phenom_ii_x2_spec,
)
from repro.units import ghz, mhz


class TestGpuCalibration:
    def test_memory_ladder_matches_paper_exactly(self):
        """§VI quotes 900/820/740/660/580/500 MHz verbatim."""
        spec = geforce_8800_gtx_spec()
        assert spec.mem_ladder.levels == tuple(
            mhz(v) for v in (900, 820, 740, 660, 580, 500)
        )

    def test_core_ladder_peak_is_576(self):
        assert geforce_8800_gtx_spec().core_ladder.peak == mhz(576)

    def test_core_ladder_contains_410_knee(self):
        """§III-A's streamcluster knee frequency must be a level."""
        spec = geforce_8800_gtx_spec()
        assert any(abs(f - mhz(410.4)) < mhz(0.5) for f in spec.core_ladder)

    def test_six_levels_each_domain(self):
        spec = geforce_8800_gtx_spec()
        assert len(spec.core_ladder) == 6
        assert len(spec.mem_ladder) == 6

    def test_peak_power_near_8800gtx_tdp(self):
        peak = geforce_8800_gtx_spec().power.peak_power
        assert 130.0 <= peak <= 160.0

    def test_idle_power_substantial(self):
        """2006-era cards idle hot — idle is a large share of peak."""
        spec = geforce_8800_gtx_spec()
        idle = spec.power.idle_power(1.0, 1.0)
        assert idle / spec.power.peak_power > 0.5

    def test_datasheet_rates(self):
        spec = geforce_8800_gtx_spec()
        assert spec.peak_compute_rate == pytest.approx(345.6e9)
        assert spec.peak_bandwidth == pytest.approx(86.4e9)


class TestCpuCalibration:
    def test_pstates_match_paper(self):
        """§VI: 2.8, 2.1, 1.3 GHz and 800 MHz."""
        spec = phenom_ii_x2_spec()
        assert spec.ladder.levels == tuple(ghz(v) for v in (2.8, 2.1, 1.3, 0.8))

    def test_dual_core(self):
        assert phenom_ii_x2_spec().cores == 2

    def test_peak_power_below_tdp(self):
        assert phenom_ii_x2_spec().power.peak_power <= 80.0


class TestMeterCalibration:
    def test_efficiencies_physical(self):
        cfg = default_testbed_config()
        assert 0.5 < cfg.meter1_efficiency <= 1.0
        assert 0.5 < cfg.meter2_efficiency <= 1.0

    def test_headline_energy_ratio_anchor(self):
        """Total vs dynamic savings asymmetry (Fig. 6a vs 6b) requires the
        idle wall power to be a large fraction of a typical busy run."""
        cfg = default_testbed_config()
        gpu = cfg.gpu
        idle_wall = (
            gpu.power.idle_power(
                gpu.core_ladder.floor / gpu.core_ladder.peak,
                gpu.mem_ladder.floor / gpu.mem_ladder.peak,
            )
            + cfg.meter2_overhead_w
        ) / cfg.meter2_efficiency
        busy_wall = (
            gpu.power.power(1.0, 1.0, 0.6, 0.3) + cfg.meter2_overhead_w
        ) / cfg.meter2_efficiency
        assert 0.6 < idle_wall / busy_wall < 0.9
