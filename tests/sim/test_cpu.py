"""Tests for the simulated CPU device."""

import pytest

from repro.errors import FrequencyError, SimulationError
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.cpu import CpuDevice
from repro.units import ghz


@pytest.fixture
def cpu(cpu_spec):
    return CpuDevice(cpu_spec)


def _kernel(seconds_at_peak: float, cpu_spec, u_core=0.8, u_mem=0.4):
    stall = cpu_spec.roofline.stall_for_utilizations(u_core, u_mem)
    return KernelActivity(
        [
            PhaseDemand(
                flops=u_core * seconds_at_peak * cpu_spec.peak_compute_rate,
                bytes=u_mem * seconds_at_peak * cpu_spec.host_bandwidth,
                stall_s=stall * seconds_at_peak,
            )
        ]
    )


class TestPStates:
    def test_defaults_to_peak(self, cpu):
        assert cpu.f == cpu.spec.ladder.peak
        assert cpu.level == 0

    def test_set_frequency(self, cpu):
        cpu.set_frequency(ghz(1.3))
        assert cpu.level == 2

    def test_rejects_non_pstate(self, cpu):
        with pytest.raises(FrequencyError):
            cpu.set_frequency(ghz(2.0))

    def test_transition_counter_ignores_noop(self, cpu):
        cpu.set_frequency(cpu.f)
        assert cpu.freq_transitions == 0
        cpu.set_frequency(ghz(0.8))
        assert cpu.freq_transitions == 1

    def test_compute_rate_scales(self, cpu):
        peak = cpu.compute_rate
        cpu.set_frequency(ghz(0.8))
        assert cpu.compute_rate == pytest.approx(peak * 0.8 / 2.8)


class TestSpinSemantics:
    def test_spin_reports_busy_without_work(self, cpu):
        cpu.spin()
        assert cpu.busy and not cpu.has_work
        assert cpu.instantaneous_utilization() == 1.0

    def test_spin_burns_active_power(self, cpu):
        idle_power = cpu.spec.power.idle_power(1.0)
        cpu.spin()
        assert cpu.instantaneous_power() > idle_power

    def test_spin_makes_no_progress(self, cpu, cpu_spec):
        """Spin alongside work: work progresses, spin doesn't interfere."""
        cpu.spin()
        cpu.advance(2.0)
        assert cpu.spin_seconds == pytest.approx(2.0)
        assert cpu.work_seconds == 0.0

    def test_stop_spin(self, cpu):
        cpu.spin()
        cpu.stop_spin()
        assert not cpu.busy
        cpu.advance(1.0)
        assert cpu.spin_seconds == 0.0

    def test_spin_energy_tracked_separately(self, cpu):
        cpu.spin()
        cpu.advance(3.0)
        assert cpu.spin_energy_j == pytest.approx(cpu.energy_j)

    def test_working_time_not_counted_as_spin(self, cpu, cpu_spec):
        cpu.submit_kernel(_kernel(2.0, cpu_spec))
        cpu.spin()  # spin flag set, but work takes priority
        cpu.advance(cpu.time_to_event())
        assert cpu.work_seconds > 0.0
        assert cpu.spin_seconds == 0.0


class TestExecution:
    def test_kernel_duration_at_peak(self, cpu, cpu_spec):
        cpu.submit_kernel(_kernel(5.0, cpu_spec))
        total = 0.0
        while cpu.has_work:
            dt = cpu.time_to_event()
            cpu.advance(dt)
            total += dt
        assert total == pytest.approx(5.0, rel=1e-6)

    def test_kernel_slows_at_lower_pstate(self, cpu, cpu_spec):
        cpu.set_frequency(ghz(0.8))
        cpu.submit_kernel(_kernel(5.0, cpu_spec, u_core=0.9, u_mem=0.1))
        t = cpu.time_to_event()
        assert t > 5.0  # compute-bound share stretches by ~2.8/0.8

    def test_memory_bound_kernel_insensitive_to_pstate(self, cpu, cpu_spec):
        """Host bandwidth is not frequency-scaled."""
        k = _kernel(5.0, cpu_spec, u_core=0.05, u_mem=0.9)
        cpu.submit_kernel(k)
        t_peak = cpu.time_to_event()
        cpu.set_frequency(ghz(0.8))
        t_floor = cpu.time_to_event()
        assert t_floor / t_peak < 1.35

    def test_emulated_energy_replaces_spin_with_floor_idle(self, cpu):
        cpu.spin()
        cpu.advance(10.0)
        cpu.stop_spin()
        emulated = cpu.emulated_energy_with_idle_spin()
        floor_ratio = cpu.spec.ladder.floor / cpu.spec.ladder.peak
        expected = cpu.spec.power.idle_power(floor_ratio) * 10.0
        assert emulated == pytest.approx(expected)
        assert emulated < cpu.energy_j

    def test_emulated_energy_without_spin_is_total(self, cpu, cpu_spec):
        cpu.submit_kernel(_kernel(2.0, cpu_spec))
        cpu.advance(cpu.time_to_event())
        assert cpu.emulated_energy_with_idle_spin() == pytest.approx(cpu.energy_j)

    def test_advance_past_event_raises(self, cpu, cpu_spec):
        cpu.submit_kernel(_kernel(1.0, cpu_spec))
        with pytest.raises(SimulationError):
            cpu.advance(100.0)

    def test_cancel_all_clears_spin_too(self, cpu, cpu_spec):
        cpu.submit_kernel(_kernel(1.0, cpu_spec))
        cpu.spin()
        cpu.cancel_all()
        assert not cpu.busy and not cpu.has_work
