"""Tests for the simulation clock and periodic tasks."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimClock


class TestBasics:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_advance_by(self):
        clock = SimClock()
        clock.advance_by(2.5)
        assert clock.now == 2.5

    def test_advance_to_past_raises(self):
        clock = SimClock(start=10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_advance_by_negative_raises(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-1.0)


class TestPeriodicTasks:
    def test_fires_every_period(self):
        clock = SimClock()
        fired = []
        clock.every(1.0, fired.append)
        clock.advance_to(3.5)
        assert fired == [1.0, 2.0, 3.0]

    def test_first_at_override(self):
        clock = SimClock()
        fired = []
        clock.every(1.0, fired.append, first_at=0.25)
        clock.advance_to(2.3)
        assert fired == [0.25, 1.25, 2.25]

    def test_deadline_exactly_at_target_fires(self):
        clock = SimClock()
        fired = []
        clock.every(1.0, fired.append)
        clock.advance_to(1.0)
        assert fired == [1.0]

    def test_multiple_tasks_fire_in_deadline_order(self):
        clock = SimClock()
        order = []
        clock.every(2.0, lambda t: order.append(("slow", t)))
        clock.every(1.5, lambda t: order.append(("fast", t)))
        clock.advance_to(3.0)
        assert order == [("fast", 1.5), ("slow", 2.0), ("fast", 3.0)]

    def test_tie_breaks_by_registration_order(self):
        clock = SimClock()
        order = []
        clock.every(1.0, lambda t: order.append("a"))
        clock.every(1.0, lambda t: order.append("b"))
        clock.advance_to(1.0)
        assert order == ["a", "b"]

    def test_cancel_stops_future_firings(self):
        clock = SimClock()
        fired = []
        handle = clock.every(1.0, fired.append)
        clock.advance_to(1.5)
        handle.cancel()
        assert handle.cancelled
        clock.advance_to(5.0)
        assert fired == [1.0]

    def test_cancel_is_idempotent(self):
        clock = SimClock()
        handle = clock.every(1.0, lambda t: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_rejects_nonpositive_period(self):
        with pytest.raises(SimulationError):
            SimClock().every(0.0, lambda t: None)

    def test_rejects_first_at_in_past(self):
        clock = SimClock(start=5.0)
        with pytest.raises(SimulationError):
            clock.every(1.0, lambda t: None, first_at=4.0)

    def test_next_deadline_skips_cancelled(self):
        clock = SimClock()
        h = clock.every(1.0, lambda t: None)
        clock.every(2.0, lambda t: None)
        h.cancel()
        assert clock.next_deadline() == 2.0

    def test_next_deadline_empty(self):
        assert SimClock().next_deadline() is None


class TestPruneAccounting:
    def test_pruned_total_counts_cancelled_pops(self):
        clock = SimClock()
        handles = [clock.every(1.0, lambda t: None) for _ in range(3)]
        for h in handles:
            h.cancel()
        assert clock.pruned_total == 0  # nothing pruned until observed
        assert clock.next_deadline() is None
        assert clock.pruned_total == 3

    def test_pruning_during_advance_counts_once(self):
        clock = SimClock()
        h = clock.every(1.0, lambda t: None)
        clock.every(2.0, lambda t: None)
        h.cancel()
        clock.advance_to(4.0)
        assert clock.pruned_total == 1

    def test_prune_telemetry_counter(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        clock = SimClock()
        clock.set_telemetry(telemetry)
        handles = [clock.every(1.0, lambda t: None) for _ in range(2)]
        for h in handles:
            h.cancel()
        clock.advance_to(1.0)
        assert telemetry.registry.counter("clock_pruned_total").value == 2.0
        assert clock.pruned_total == 2

    def test_no_telemetry_counter_without_prunes(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        clock = SimClock()
        clock.set_telemetry(telemetry)
        clock.every(1.0, lambda t: None)
        clock.advance_to(3.0)
        assert clock.pruned_total == 0


class TestOneShot:
    def test_at_fires_once(self):
        clock = SimClock()
        fired = []
        clock.at(2.0, fired.append)
        clock.advance_to(10.0)
        assert fired == [2.0]

    def test_at_in_past_raises(self):
        clock = SimClock(start=3.0)
        with pytest.raises(SimulationError):
            clock.at(2.0, lambda t: None)


class TestCallbackBehaviour:
    def test_callback_sees_current_time(self):
        clock = SimClock()
        seen = []
        clock.every(1.0, lambda t: seen.append((t, clock.now)))
        clock.advance_to(2.0)
        assert all(t == now for t, now in seen)

    def test_callback_may_schedule_new_tasks(self):
        clock = SimClock()
        fired = []

        def parent(t):
            clock.at(t + 0.5, lambda t2: fired.append(t2))

        clock.every(1.0, parent)
        clock.advance_to(2.0)
        assert fired == [1.5]

    def test_callback_cannot_advance_clock(self):
        clock = SimClock()
        errors = []

        def bad(t):
            try:
                clock.advance_by(1.0)
            except SimulationError as e:
                errors.append(e)

        clock.every(1.0, bad)
        clock.advance_to(1.0)
        assert len(errors) == 1

    def test_periodic_task_cancelling_itself(self):
        clock = SimClock()
        fired = []
        handle = None

        def once(t):
            fired.append(t)
            handle.cancel()

        handle = clock.every(1.0, once)
        clock.advance_to(5.0)
        assert fired == [1.0]
