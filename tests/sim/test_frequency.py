"""Tests for the discrete frequency ladder."""

import pytest

from repro.errors import FrequencyError
from repro.sim.frequency import FrequencyLadder
from repro.units import mhz


@pytest.fixture
def mem_ladder():
    return FrequencyLadder([mhz(v) for v in (900, 820, 740, 660, 580, 500)])


class TestConstruction:
    def test_sorts_descending(self):
        ladder = FrequencyLadder([1.0, 3.0, 2.0])
        assert ladder.levels == (3.0, 2.0, 1.0)

    def test_rejects_empty(self):
        with pytest.raises(FrequencyError):
            FrequencyLadder([])

    def test_rejects_duplicates(self):
        with pytest.raises(FrequencyError):
            FrequencyLadder([1.0, 1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(FrequencyError):
            FrequencyLadder([0.0, 1.0])
        with pytest.raises(FrequencyError):
            FrequencyLadder([-1.0, 1.0])

    def test_single_level(self):
        ladder = FrequencyLadder([5.0])
        assert ladder.peak == ladder.floor == 5.0
        assert len(ladder) == 1

    def test_equally_spaced_matches_paper_memory_levels(self, mem_ladder):
        built = FrequencyLadder.equally_spaced(mhz(500), mhz(900), 6)
        assert built == mem_ladder

    def test_equally_spaced_core_hits_410(self):
        # The paper's 410 MHz streamcluster knee must be a ladder level.
        ladder = FrequencyLadder.equally_spaced(mhz(300), mhz(576), 6)
        assert any(abs(f - mhz(410.4)) < 1.0 for f in ladder)

    def test_equally_spaced_single(self):
        assert FrequencyLadder.equally_spaced(1.0, 2.0, 1).levels == (2.0,)

    def test_equally_spaced_rejects_bad_range(self):
        with pytest.raises(FrequencyError):
            FrequencyLadder.equally_spaced(2.0, 1.0, 3)
        with pytest.raises(FrequencyError):
            FrequencyLadder.equally_spaced(1.0, 2.0, 0)


class TestQueries:
    def test_peak_and_floor(self, mem_ladder):
        assert mem_ladder.peak == mhz(900)
        assert mem_ladder.floor == mhz(500)

    def test_index_of(self, mem_ladder):
        assert mem_ladder.index_of(mhz(900)) == 0
        assert mem_ladder.index_of(mhz(500)) == 5
        assert mem_ladder.index_of(mhz(740)) == 2

    def test_index_of_unknown_raises(self, mem_ladder):
        with pytest.raises(FrequencyError):
            mem_ladder.index_of(mhz(700))

    def test_getitem_negative_indexing(self, mem_ladder):
        assert mem_ladder[-1] == mem_ladder.floor
        assert mem_ladder[0] == mem_ladder.peak

    def test_getitem_out_of_range(self, mem_ladder):
        with pytest.raises(FrequencyError):
            mem_ladder[6]

    def test_contains(self, mem_ladder):
        assert mhz(820) in mem_ladder
        assert mhz(821) not in mem_ladder

    def test_iteration_order(self, mem_ladder):
        assert list(mem_ladder) == sorted(mem_ladder, reverse=True)

    def test_equality_and_hash(self, mem_ladder):
        clone = FrequencyLadder(list(mem_ladder.levels))
        assert clone == mem_ladder
        assert hash(clone) == hash(mem_ladder)
        assert mem_ladder != FrequencyLadder([1.0])
        assert mem_ladder.__eq__(42) is NotImplemented


class TestNavigation:
    def test_nearest_exact(self, mem_ladder):
        assert mem_ladder.nearest(mhz(820)) == mhz(820)

    def test_nearest_between(self, mem_ladder):
        assert mem_ladder.nearest(mhz(870)) == mhz(900)  # closer to 900

    def test_nearest_tie_prefers_faster(self, mem_ladder):
        assert mem_ladder.nearest(mhz(860)) == mhz(900)

    def test_step_down_and_up(self, mem_ladder):
        assert mem_ladder.step_down(mhz(900)) == mhz(820)
        assert mem_ladder.step_up(mhz(820)) == mhz(900)

    def test_step_down_saturates_at_floor(self, mem_ladder):
        assert mem_ladder.step_down(mhz(500)) == mhz(500)

    def test_step_up_saturates_at_peak(self, mem_ladder):
        assert mem_ladder.step_up(mhz(900)) == mhz(900)


class TestUmeanMap:
    def test_peak_maps_to_one(self, mem_ladder):
        assert mem_ladder.normalized(mhz(900)) == 1.0
        assert mem_ladder.umean(0) == 1.0

    def test_floor_maps_to_zero(self, mem_ladder):
        assert mem_ladder.normalized(mhz(500)) == 0.0
        assert mem_ladder.umean(5) == 0.0

    def test_linear_interior(self, mem_ladder):
        # 700 MHz is exactly mid-span of [500, 900] -> 0.5 ... but 700 is
        # not a level; use 740: (740-500)/400 = 0.6.
        assert mem_ladder.normalized(mhz(740)) == pytest.approx(0.6)

    def test_umean_monotone_decreasing(self, mem_ladder):
        umeans = [mem_ladder.umean(i) for i in range(len(mem_ladder))]
        assert umeans == sorted(umeans, reverse=True)

    def test_normalized_rejects_non_level(self, mem_ladder):
        with pytest.raises(FrequencyError):
            mem_ladder.normalized(mhz(700))

    def test_single_level_umean_is_one(self):
        assert FrequencyLadder([5.0]).umean(0) == 1.0
