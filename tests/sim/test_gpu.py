"""Tests for the simulated GPU device."""

import pytest

from repro.errors import FrequencyError, SimulationError
from repro.sim.activity import KernelActivity, PhaseDemand, TransferActivity
from repro.sim.gpu import GpuDevice
from repro.units import mhz


@pytest.fixture
def gpu(gpu_spec):
    return GpuDevice(gpu_spec)


def _kernel(seconds_at_peak: float, gpu_spec, u_core=0.6, u_mem=0.25):
    """A kernel taking ``seconds_at_peak`` with exact target utilizations."""
    stall = gpu_spec.roofline.stall_for_utilizations(u_core, u_mem)
    return KernelActivity(
        [
            PhaseDemand(
                flops=u_core * seconds_at_peak * gpu_spec.peak_compute_rate,
                bytes=u_mem * seconds_at_peak * gpu_spec.peak_bandwidth,
                stall_s=stall * seconds_at_peak,
            )
        ]
    )


class TestFrequencyControl:
    def test_defaults_to_floor_clocks(self, gpu):
        """Idle GPUs default to lowest levels (paper Fig. 5 discussion)."""
        assert gpu.f_core == gpu.spec.core_ladder.floor
        assert gpu.f_mem == gpu.spec.mem_ladder.floor

    def test_set_peak(self, gpu):
        gpu.set_peak()
        assert gpu.core_level == 0 and gpu.mem_level == 0

    def test_set_levels(self, gpu):
        gpu.set_levels(2, 3)
        assert gpu.core_level == 2 and gpu.mem_level == 3

    def test_rejects_non_ladder_frequency(self, gpu):
        with pytest.raises(FrequencyError):
            gpu.set_frequencies(mhz(555), gpu.f_mem)
        with pytest.raises(FrequencyError):
            gpu.set_frequencies(gpu.spec.core_ladder.peak, mhz(555))

    def test_transition_counter(self, gpu):
        start = gpu.freq_transitions
        gpu.set_peak()
        gpu.set_peak()  # no-op change
        assert gpu.freq_transitions == start + 1

    def test_rates_scale_with_frequency(self, gpu):
        gpu.set_peak()
        peak_rate = gpu.compute_rate
        gpu.set_levels(len(gpu.spec.core_ladder) - 1, 0)
        assert gpu.compute_rate == pytest.approx(
            peak_rate * gpu.spec.core_ladder.floor / gpu.spec.core_ladder.peak
        )


class TestExecution:
    def test_kernel_duration_at_peak(self, gpu, gpu_spec):
        gpu.set_peak()
        gpu.submit_kernel(_kernel(10.0, gpu_spec))
        total = 0.0
        while gpu.busy:
            dt = gpu.time_to_event()
            gpu.advance(dt)
            total += dt
        assert total == pytest.approx(10.0 + gpu_spec.launch_overhead_s, rel=1e-6)

    def test_utilizations_match_targets(self, gpu, gpu_spec):
        gpu.set_peak()
        gpu.submit_kernel(_kernel(10.0, gpu_spec, u_core=0.6, u_mem=0.25))
        while gpu.busy:
            gpu.advance(gpu.time_to_event())
        elapsed = gpu.elapsed_seconds
        assert gpu.busy_core_seconds / elapsed == pytest.approx(0.6, rel=0.01)
        assert gpu.busy_mem_seconds / elapsed == pytest.approx(0.25, rel=0.01)

    def test_mid_kernel_frequency_change_preserves_work(self, gpu, gpu_spec):
        """Half the work at peak + half at peak after a dip == full work."""
        gpu.set_peak()
        gpu.submit_kernel(_kernel(10.0, gpu_spec, u_core=0.9, u_mem=0.1))
        gpu.advance(gpu_spec.launch_overhead_s)
        gpu.advance(5.0)  # half the kernel at peak
        gpu.set_levels(len(gpu_spec.core_ladder) - 1, 0)  # core floor
        remaining = gpu.time_to_event()
        # Core-bounded work slows toward peak/floor on the remainder
        # (a bit less, because the stall component does not scale).
        slowdown = gpu_spec.core_ladder.peak / gpu_spec.core_ladder.floor
        assert 5.0 * 1.5 < remaining < 5.0 * slowdown

    def test_transfer_insensitive_to_frequency(self, gpu):
        gpu.submit_transfer(TransferActivity(2.0, bytes_=1e6))
        gpu.set_peak()
        assert gpu.time_to_event() == pytest.approx(2.0)

    def test_advance_past_event_raises(self, gpu, gpu_spec):
        gpu.submit_transfer(TransferActivity(1.0))
        with pytest.raises(SimulationError):
            gpu.advance(2.0)

    def test_advance_negative_raises(self, gpu):
        with pytest.raises(SimulationError):
            gpu.advance(-0.1)

    def test_idle_device_time_to_event_none(self, gpu):
        assert gpu.time_to_event() is None
        assert gpu.instantaneous_utilization() == (0.0, 0.0)

    def test_zero_demand_kernel_completes_immediately(self, gpu, gpu_spec):
        k = KernelActivity([PhaseDemand(0.0, 0.0, 0.0)])
        gpu.submit_kernel(k)
        gpu.advance(gpu_spec.launch_overhead_s)
        assert k.done
        assert not gpu.busy

    def test_cancel_all(self, gpu, gpu_spec):
        gpu.submit_kernel(_kernel(10.0, gpu_spec))
        gpu.cancel_all()
        assert not gpu.busy

    def test_launch_counter(self, gpu, gpu_spec):
        gpu.submit_kernel(_kernel(1.0, gpu_spec))
        gpu.submit_kernel(_kernel(1.0, gpu_spec))
        assert gpu.kernel_launches == 2


class TestEnergyAccounting:
    def test_idle_energy_integrates_idle_power(self, gpu):
        gpu.advance(10.0)
        expected = gpu.spec.power.idle_power(
            gpu.f_core / gpu.spec.core_ladder.peak,
            gpu.f_mem / gpu.spec.mem_ladder.peak,
        )
        assert gpu.energy_j == pytest.approx(expected * 10.0)

    def test_busy_energy_above_idle(self, gpu, gpu_spec):
        idle = GpuDevice(gpu_spec)
        idle.set_peak()
        idle.advance(5.0)
        gpu.set_peak()
        gpu.submit_kernel(_kernel(10.0, gpu_spec))
        gpu.advance(gpu.time_to_event())
        gpu.advance(5.0)
        assert gpu.energy_j > idle.energy_j

    def test_counters_monotonic(self, gpu, gpu_spec):
        gpu.set_peak()
        gpu.submit_kernel(_kernel(3.0, gpu_spec))
        last = (0.0, 0.0, 0.0)
        while gpu.busy:
            gpu.advance(min(gpu.time_to_event(), 0.7))
            current = (gpu.energy_j, gpu.busy_core_seconds, gpu.busy_mem_seconds)
            assert all(c >= l for c, l in zip(current, last))
            last = current
