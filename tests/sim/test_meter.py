"""Tests for the WattsUp-style power meter."""

import pytest

from repro.errors import ConfigError, MeterError
from repro.sim.meter import PowerMeter


def constant(p):
    return lambda: p


class TestIntegration:
    def test_energy_integral(self):
        meter = PowerMeter("m", [constant(100.0)])
        meter.accumulate(10.0)
        assert meter.energy_j == pytest.approx(1000.0)
        assert meter.elapsed_s == 10.0

    def test_overhead_and_efficiency(self):
        meter = PowerMeter("m", [constant(100.0)], overhead_w=10.0, efficiency=0.5)
        assert meter.instantaneous_power() == pytest.approx(220.0)

    def test_multiple_sources_sum(self):
        meter = PowerMeter("m", [constant(40.0), constant(60.0)])
        assert meter.instantaneous_power() == pytest.approx(100.0)

    def test_piecewise_constant_exact(self):
        power = [50.0]
        meter = PowerMeter("m", [lambda: power[0]])
        meter.accumulate(2.0)
        power[0] = 150.0
        meter.accumulate(2.0)
        assert meter.energy_j == pytest.approx(400.0)

    def test_average_power(self):
        meter = PowerMeter("m", [constant(80.0)])
        meter.accumulate(5.0)
        assert meter.average_power() == pytest.approx(80.0)

    def test_average_power_without_time_raises(self):
        with pytest.raises(MeterError):
            PowerMeter("m", [constant(1.0)]).average_power()

    def test_zero_dt_noop(self):
        meter = PowerMeter("m", [constant(1.0)])
        meter.accumulate(0.0)
        assert meter.energy_j == 0.0

    def test_negative_dt_raises(self):
        with pytest.raises(MeterError):
            PowerMeter("m", [constant(1.0)]).accumulate(-1.0)


class TestSampleLog:
    def test_one_sample_per_period(self):
        meter = PowerMeter("m", [constant(42.0)], sample_period_s=1.0)
        meter.accumulate(3.0)
        assert meter.samples == pytest.approx([42.0, 42.0, 42.0])

    def test_samples_average_within_window(self):
        power = [100.0]
        meter = PowerMeter("m", [lambda: power[0]], sample_period_s=1.0)
        meter.accumulate(0.5)
        power[0] = 0.0
        meter.accumulate(0.5)
        assert meter.samples == pytest.approx([50.0])

    def test_partial_window_not_emitted(self):
        meter = PowerMeter("m", [constant(1.0)], sample_period_s=1.0)
        meter.accumulate(0.7)
        assert meter.samples == []

    def test_long_dt_spans_many_windows(self):
        meter = PowerMeter("m", [constant(5.0)], sample_period_s=0.25)
        meter.accumulate(1.0)
        assert len(meter.samples) == 4


class TestFinalize:
    def test_flushes_trailing_partial_window(self):
        meter = PowerMeter("m", [constant(10.0)], sample_period_s=1.0)
        meter.accumulate(2.7)
        assert len(meter.samples) == 2
        meter.finalize()
        assert meter.samples == pytest.approx([10.0, 10.0, 10.0])

    def test_partial_window_average_is_exact(self):
        power = [100.0]
        meter = PowerMeter("m", [lambda: power[0]], sample_period_s=1.0)
        meter.accumulate(1.2)  # closes one window, opens 0.2 s at 100 W
        power[0] = 0.0
        meter.accumulate(0.2)  # 0.4 s open: half at 100 W, half at 0 W
        meter.finalize()
        assert meter.samples == pytest.approx([100.0, 50.0])

    def test_idempotent_and_safe_on_fresh_meter(self):
        meter = PowerMeter("m", [constant(1.0)])
        meter.finalize()
        assert meter.samples == []
        meter.accumulate(1.5)
        meter.finalize()
        meter.finalize()
        assert len(meter.samples) == 2

    def test_exact_whole_windows_leave_nothing_to_flush(self):
        meter = PowerMeter("m", [constant(7.0)], sample_period_s=0.5)
        meter.accumulate(2.0)
        meter.finalize()
        assert meter.samples == pytest.approx([7.0] * 4)

    def test_energy_integral_unaffected(self):
        meter = PowerMeter("m", [constant(30.0)])
        meter.accumulate(2.5)
        before = meter.energy_j
        meter.finalize()
        assert meter.energy_j == before
        assert meter.elapsed_s == 2.5


class TestFastForwardEquivalence:
    """The O(1) multi-window advance must match a per-window loop."""

    def test_many_windows_single_call_matches_loop(self):
        fast = PowerMeter("fast", [constant(12.5)], sample_period_s=0.25)
        slow = PowerMeter("slow", [constant(12.5)], sample_period_s=0.25)
        fast.accumulate(103.37)
        step = 0.01
        for _ in range(int(round(103.37 / step))):
            slow.accumulate(step)
        slow.finalize()
        fast.finalize()
        assert fast.energy_j == pytest.approx(slow.energy_j)
        assert len(fast.samples) == len(slow.samples)
        assert fast.samples == pytest.approx(slow.samples)

    def test_window_boundary_epsilon(self):
        # A dt that lands within 1e-12 of the boundary closes the window
        # instead of leaving a sliver open (matches the old loop).
        meter = PowerMeter("m", [constant(3.0)], sample_period_s=0.1)
        for _ in range(10):
            meter.accumulate(0.1)
        assert len(meter.samples) == 10
        meter.finalize()
        assert len(meter.samples) == 10


class TestSampleLogCap:
    def test_cap_bounds_log_and_doubles_stride(self):
        meter = PowerMeter("m", [constant(5.0)], sample_period_s=1.0,
                           sample_log_cap=8)
        meter.accumulate(100.0)
        assert len(meter.samples) <= 8
        assert meter.sample_stride > 1
        assert meter.samples == pytest.approx([5.0] * len(meter.samples))

    def test_uncapped_by_default(self):
        meter = PowerMeter("m", [constant(5.0)], sample_period_s=1.0)
        meter.accumulate(100.0)
        assert len(meter.samples) == 100
        assert meter.sample_stride == 1

    def test_decimation_keeps_every_other_sample(self):
        ramp = [0.0]
        meter = PowerMeter("m", [lambda: ramp[0]], sample_period_s=1.0,
                           sample_log_cap=4)
        for i in range(8):
            ramp[0] = float(i)
            meter.accumulate(1.0)
        # 8 windows 0..7, decimated once (stride 2): indexes 0, 2, 4, 6.
        assert meter.sample_stride == 2
        assert meter.samples == pytest.approx([0.0, 2.0, 4.0, 6.0])

    def test_rejects_cap_below_two(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], sample_log_cap=1)

    def test_reset_restores_stride(self):
        meter = PowerMeter("m", [constant(1.0)], sample_log_cap=2)
        meter.accumulate(10.0)
        assert meter.sample_stride > 1
        meter.reset()
        assert meter.sample_stride == 1
        assert meter.samples == []


class TestLifecycle:
    def test_reset(self):
        meter = PowerMeter("m", [constant(1.0)])
        meter.accumulate(5.0)
        meter.reset()
        assert meter.energy_j == 0.0
        assert meter.elapsed_s == 0.0
        assert meter.samples == []

    def test_rejects_empty_sources(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [])

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], efficiency=0.0)
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], efficiency=1.5)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], overhead_w=-1.0)

    def test_rejects_bad_sample_period(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], sample_period_s=0.0)
