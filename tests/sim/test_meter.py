"""Tests for the WattsUp-style power meter."""

import pytest

from repro.errors import ConfigError, MeterError
from repro.sim.meter import PowerMeter


def constant(p):
    return lambda: p


class TestIntegration:
    def test_energy_integral(self):
        meter = PowerMeter("m", [constant(100.0)])
        meter.accumulate(10.0)
        assert meter.energy_j == pytest.approx(1000.0)
        assert meter.elapsed_s == 10.0

    def test_overhead_and_efficiency(self):
        meter = PowerMeter("m", [constant(100.0)], overhead_w=10.0, efficiency=0.5)
        assert meter.instantaneous_power() == pytest.approx(220.0)

    def test_multiple_sources_sum(self):
        meter = PowerMeter("m", [constant(40.0), constant(60.0)])
        assert meter.instantaneous_power() == pytest.approx(100.0)

    def test_piecewise_constant_exact(self):
        power = [50.0]
        meter = PowerMeter("m", [lambda: power[0]])
        meter.accumulate(2.0)
        power[0] = 150.0
        meter.accumulate(2.0)
        assert meter.energy_j == pytest.approx(400.0)

    def test_average_power(self):
        meter = PowerMeter("m", [constant(80.0)])
        meter.accumulate(5.0)
        assert meter.average_power() == pytest.approx(80.0)

    def test_average_power_without_time_raises(self):
        with pytest.raises(MeterError):
            PowerMeter("m", [constant(1.0)]).average_power()

    def test_zero_dt_noop(self):
        meter = PowerMeter("m", [constant(1.0)])
        meter.accumulate(0.0)
        assert meter.energy_j == 0.0

    def test_negative_dt_raises(self):
        with pytest.raises(MeterError):
            PowerMeter("m", [constant(1.0)]).accumulate(-1.0)


class TestSampleLog:
    def test_one_sample_per_period(self):
        meter = PowerMeter("m", [constant(42.0)], sample_period_s=1.0)
        meter.accumulate(3.0)
        assert meter.samples == pytest.approx([42.0, 42.0, 42.0])

    def test_samples_average_within_window(self):
        power = [100.0]
        meter = PowerMeter("m", [lambda: power[0]], sample_period_s=1.0)
        meter.accumulate(0.5)
        power[0] = 0.0
        meter.accumulate(0.5)
        assert meter.samples == pytest.approx([50.0])

    def test_partial_window_not_emitted(self):
        meter = PowerMeter("m", [constant(1.0)], sample_period_s=1.0)
        meter.accumulate(0.7)
        assert meter.samples == []

    def test_long_dt_spans_many_windows(self):
        meter = PowerMeter("m", [constant(5.0)], sample_period_s=0.25)
        meter.accumulate(1.0)
        assert len(meter.samples) == 4


class TestLifecycle:
    def test_reset(self):
        meter = PowerMeter("m", [constant(1.0)])
        meter.accumulate(5.0)
        meter.reset()
        assert meter.energy_j == 0.0
        assert meter.elapsed_s == 0.0
        assert meter.samples == []

    def test_rejects_empty_sources(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [])

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], efficiency=0.0)
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], efficiency=1.5)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], overhead_w=-1.0)

    def test_rejects_bad_sample_period(self):
        with pytest.raises(ConfigError):
            PowerMeter("m", [constant(1.0)], sample_period_s=0.0)
