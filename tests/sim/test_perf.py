"""Tests for the roofline execution-time / utilization model."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.perf import RooflineModel


class TestCombine:
    def test_serial_limit_k1(self):
        m = RooflineModel(1.0)
        assert m.combine(2.0, 3.0, 1.0) == pytest.approx(6.0)

    def test_perfect_overlap_inf(self):
        m = RooflineModel(float("inf"))
        assert m.combine(2.0, 3.0, 1.0) == 3.0

    def test_between_serial_and_max(self):
        m = RooflineModel(4.0)
        t = m.combine(2.0, 3.0)
        assert 3.0 < t < 5.0

    def test_zero_components(self):
        m = RooflineModel(4.0)
        assert m.combine(0.0, 0.0, 0.0) == 0.0
        assert m.combine(5.0, 0.0, 0.0) == 5.0
        assert m.combine(0.0, 5.0) == 5.0

    def test_monotone_in_each_component(self):
        m = RooflineModel(4.0)
        base = m.combine(1.0, 1.0, 1.0)
        assert m.combine(1.5, 1.0, 1.0) > base
        assert m.combine(1.0, 1.5, 1.0) > base
        assert m.combine(1.0, 1.0, 1.5) > base

    def test_symmetric_in_compute_and_memory(self):
        m = RooflineModel(3.0)
        assert m.combine(2.0, 5.0) == pytest.approx(m.combine(5.0, 2.0))

    def test_large_magnitudes_no_overflow(self):
        m = RooflineModel(8.0)
        t = m.combine(1e300, 1e299)
        assert math.isfinite(t) and t >= 1e300

    def test_rejects_negative(self):
        m = RooflineModel(4.0)
        with pytest.raises(SimulationError):
            m.combine(-1.0, 1.0)

    def test_rejects_bad_exponent(self):
        with pytest.raises(SimulationError):
            RooflineModel(0.5)


class TestEstimate:
    def test_component_times(self):
        m = RooflineModel(float("inf"))
        est = m.estimate(flops=100.0, bytes_=50.0, compute_rate=10.0, bandwidth=5.0)
        assert est.t_compute == 10.0
        assert est.t_memory == 10.0
        assert est.seconds == 10.0
        assert est.u_core == pytest.approx(1.0)
        assert est.u_mem == pytest.approx(1.0)

    def test_utilizations_are_busy_fractions(self):
        m = RooflineModel(4.0)
        est = m.estimate(70.0, 40.0, 10.0, 10.0)
        assert est.u_core == pytest.approx(est.t_compute / est.seconds)
        assert est.u_mem == pytest.approx(est.t_memory / est.seconds)

    def test_stall_lowers_both_utilizations(self):
        m = RooflineModel(4.0)
        no_stall = m.estimate(50.0, 30.0, 10.0, 10.0)
        stalled = m.estimate(50.0, 30.0, 10.0, 10.0, stall_s=20.0)
        assert stalled.u_core < no_stall.u_core
        assert stalled.u_mem < no_stall.u_mem
        assert stalled.seconds > no_stall.seconds

    def test_zero_demand_zero_time(self):
        m = RooflineModel(4.0)
        est = m.estimate(0.0, 0.0, 1.0, 1.0)
        assert est.seconds == 0.0
        assert est.u_core == 0.0 and est.u_mem == 0.0

    def test_bottleneck_utilization_near_one(self):
        m = RooflineModel(4.0)
        est = m.estimate(1000.0, 1.0, 10.0, 10.0)
        assert est.u_core > 0.99
        assert est.u_mem < 0.01

    def test_throttling_nonbottleneck_barely_moves_time(self):
        """Paper Fig. 1 observation 1 in model form."""
        m = RooflineModel(4.0)
        base = m.estimate(1000.0, 100.0, 10.0, 10.0)
        throttled = m.estimate(1000.0, 100.0, 10.0, 5.0)  # halve bandwidth
        assert throttled.seconds / base.seconds < 1.05

    def test_throttling_bottleneck_scales_inverse(self):
        m = RooflineModel(4.0)
        base = m.estimate(1000.0, 1.0, 10.0, 10.0)
        throttled = m.estimate(1000.0, 1.0, 5.0, 10.0)
        assert throttled.seconds / base.seconds == pytest.approx(2.0, rel=1e-3)

    def test_rejects_nonpositive_rates(self):
        m = RooflineModel(4.0)
        with pytest.raises(SimulationError):
            m.estimate(1.0, 1.0, 0.0, 1.0)
        with pytest.raises(SimulationError):
            m.estimate(1.0, 1.0, 1.0, -1.0)

    def test_rejects_negative_demand(self):
        m = RooflineModel(4.0)
        with pytest.raises(SimulationError):
            m.estimate(-1.0, 1.0, 1.0, 1.0)
        with pytest.raises(SimulationError):
            m.estimate(1.0, 1.0, 1.0, 1.0, stall_s=-0.1)


class TestCalibrationHelpers:
    def test_norm_on_feasible_pair(self):
        m = RooflineModel(4.0)
        assert m.utilization_norm(0.6, 0.25) < 1.0

    def test_stall_fraction_round_trips_utilizations(self):
        """Building a phase from the solved stall reproduces the targets."""
        m = RooflineModel(4.0)
        u_core, u_mem = 0.6, 0.25
        stall = m.stall_for_utilizations(u_core, u_mem)
        est = m.estimate(u_core * 100.0, u_mem * 100.0, 100.0, 100.0, stall_s=stall)
        assert est.u_core == pytest.approx(u_core, rel=1e-9)
        assert est.u_mem == pytest.approx(u_mem, rel=1e-9)
        assert est.seconds == pytest.approx(1.0, rel=1e-9)

    def test_boundary_pair_zero_stall(self):
        m = RooflineModel(4.0)
        # A pair exactly on the unit p-norm sphere needs no stall.
        u_core = 0.9
        u_mem = (1.0 - u_core**4) ** 0.25
        assert m.stall_for_utilizations(u_core, u_mem) == pytest.approx(0.0, abs=1e-6)

    def test_infeasible_pair_raises(self):
        m = RooflineModel(4.0)
        with pytest.raises(SimulationError):
            m.stall_for_utilizations(0.95, 0.95)

    def test_infinite_exponent_feasibility(self):
        m = RooflineModel(float("inf"))
        assert m.stall_for_utilizations(0.5, 0.5) == 1.0
        assert m.stall_for_utilizations(1.0, 0.5) == 0.0

    def test_rejects_out_of_range_utilizations(self):
        m = RooflineModel(4.0)
        with pytest.raises(SimulationError):
            m.stall_for_utilizations(1.5, 0.5)
