"""Tests for the assembled heterogeneous testbed."""

import pytest

from repro.errors import SimulationError
from repro.sim.activity import KernelActivity, PhaseDemand
from repro.sim.platform import make_testbed


def _gpu_kernel(system, seconds, u_core=0.6, u_mem=0.25):
    spec = system.gpu.spec
    stall = spec.roofline.stall_for_utilizations(u_core, u_mem)
    return KernelActivity(
        [
            PhaseDemand(
                flops=u_core * seconds * spec.peak_compute_rate,
                bytes=u_mem * seconds * spec.peak_bandwidth,
                stall_s=stall * seconds,
            )
        ]
    )


class TestAssembly:
    def test_default_testbed_components(self, testbed):
        assert testbed.gpu.spec.name == "GeForce 8800 GTX"
        assert testbed.cpu.spec.name == "AMD Phenom II X2"
        assert len(testbed.gpu.spec.core_ladder) == 6
        assert len(testbed.gpu.spec.mem_ladder) == 6
        assert len(testbed.cpu.spec.ladder) == 4

    def test_two_meter_boundaries(self, testbed):
        assert testbed.meter_cpu.name.startswith("meter1")
        assert testbed.meter_gpu.name.startswith("meter2")

    def test_system_power_sums_meters(self, testbed):
        assert testbed.system_power() == pytest.approx(
            testbed.meter_cpu.instantaneous_power()
            + testbed.meter_gpu.instantaneous_power()
        )

    def test_idle_power_below_busy_power(self, testbed):
        testbed.gpu.set_peak()
        idle = testbed.idle_system_power()
        testbed.cpu.spin()
        assert testbed.system_power() > idle


class TestStepping:
    def test_step_advances_to_device_event(self, testbed):
        testbed.gpu.set_peak()
        testbed.gpu.submit_kernel(_gpu_kernel(testbed, 5.0))
        dt = testbed.step()
        assert dt > 0.0

    def test_step_without_anything_raises(self, testbed):
        with pytest.raises(SimulationError):
            testbed.step()

    def test_step_with_horizon_only(self, testbed):
        dt = testbed.step(horizon=2.0)
        assert dt == 2.0
        assert testbed.now == 2.0

    def test_run_for_exact_duration(self, testbed):
        testbed.run_for(7.3)
        assert testbed.now == pytest.approx(7.3)
        assert testbed.gpu.elapsed_seconds == pytest.approx(7.3)
        assert testbed.cpu.elapsed_seconds == pytest.approx(7.3)

    def test_run_until_devices_idle(self, testbed):
        testbed.gpu.set_peak()
        testbed.gpu.submit_kernel(_gpu_kernel(testbed, 3.0))
        testbed.run_until_devices_idle()
        assert not testbed.gpu.busy

    def test_run_until_idle_timeout(self, testbed):
        testbed.gpu.set_levels(5, 5)
        testbed.gpu.submit_kernel(_gpu_kernel(testbed, 100.0))
        with pytest.raises(SimulationError):
            testbed.run_until_devices_idle(timeout_s=1.0)

    def test_spin_does_not_block_idle_detection(self, testbed):
        testbed.cpu.spin()
        testbed.gpu.set_peak()
        testbed.gpu.submit_kernel(_gpu_kernel(testbed, 1.0))
        testbed.run_until_devices_idle()  # must terminate despite spin
        assert testbed.cpu.spinning

    def test_clock_tasks_fire_during_steps(self, testbed):
        ticks = []
        testbed.clock.every(0.5, ticks.append)
        testbed.run_for(2.0)
        assert len(ticks) == 4


class TestEnergyConsistency:
    def test_meter_energy_tracks_device_energy(self, testbed):
        """Meter2 wall energy = (device + overhead) / efficiency."""
        testbed.gpu.set_peak()
        testbed.gpu.submit_kernel(_gpu_kernel(testbed, 4.0))
        testbed.run_until_devices_idle()
        cfg = testbed.config
        expected = (
            testbed.gpu.energy_j + cfg.meter2_overhead_w * testbed.now
        ) / cfg.meter2_efficiency
        assert testbed.meter_gpu.energy_j == pytest.approx(expected, rel=1e-9)

    def test_total_energy_is_meter_sum(self, testbed):
        testbed.run_for(3.0)
        assert testbed.total_energy_j == pytest.approx(
            testbed.meter_cpu.energy_j + testbed.meter_gpu.energy_j
        )

    def test_reset_meters(self, testbed):
        testbed.run_for(1.0)
        testbed.reset_meters()
        assert testbed.total_energy_j == 0.0
