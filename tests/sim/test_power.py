"""Tests for the GPU and CPU power models."""

import pytest

from repro.errors import ConfigError
from repro.sim.power import CpuPowerModel, GpuPowerModel


@pytest.fixture
def gpu_power():
    return GpuPowerModel(
        static_w=60.0, clock_core_w=25.0, clock_mem_w=28.0,
        active_core_w=22.0, active_mem_w=12.0,
    )


@pytest.fixture
def cpu_power():
    return CpuPowerModel(static_w=15.0, active_w=40.0, v_floor_ratio=0.75, f_floor_ratio=0.2857)


class TestGpuPower:
    def test_peak_power_is_sum_of_terms(self, gpu_power):
        assert gpu_power.peak_power == pytest.approx(60 + 25 + 28 + 22 + 12)

    def test_idle_power_has_no_activity_terms(self, gpu_power):
        assert gpu_power.idle_power(1.0, 1.0) == pytest.approx(60 + 25 + 28)

    def test_idle_at_floor_clocks_below_idle_at_peak(self, gpu_power):
        assert gpu_power.idle_power(0.5, 0.55) < gpu_power.idle_power(1.0, 1.0)

    def test_clock_power_scales_linearly_with_frequency(self, gpu_power):
        p_hi = gpu_power.idle_power(1.0, 1.0)
        p_lo = gpu_power.idle_power(0.5, 1.0)
        assert p_hi - p_lo == pytest.approx(25.0 * 0.5)

    def test_activity_power_proportional_to_utilization(self, gpu_power):
        p_busy = gpu_power.power(1.0, 1.0, 0.5, 0.0)
        p_idle = gpu_power.power(1.0, 1.0, 0.0, 0.0)
        assert p_busy - p_idle == pytest.approx(22.0 * 0.5)

    def test_frequency_only_scaling_not_superlinear(self, gpu_power):
        """GPU has no DVFS: dynamic power is linear in f (paper §VII-C)."""
        d1 = gpu_power.power(1.0, 1.0, 1.0, 1.0) - gpu_power.idle_power(1.0, 1.0)
        d_half = gpu_power.power(0.5, 1.0, 1.0, 1.0) - gpu_power.idle_power(0.5, 1.0)
        assert d1 - d_half == pytest.approx(22.0 * 0.5)

    def test_monotone_in_every_argument(self, gpu_power):
        base = gpu_power.power(0.8, 0.8, 0.5, 0.5)
        assert gpu_power.power(0.9, 0.8, 0.5, 0.5) > base
        assert gpu_power.power(0.8, 0.9, 0.5, 0.5) > base
        assert gpu_power.power(0.8, 0.8, 0.6, 0.5) > base
        assert gpu_power.power(0.8, 0.8, 0.5, 0.6) > base

    def test_rejects_bad_inputs(self, gpu_power):
        with pytest.raises(ConfigError):
            gpu_power.power(0.0, 1.0, 0.5, 0.5)
        with pytest.raises(ConfigError):
            gpu_power.power(1.0, 1.0, 1.5, 0.5)
        with pytest.raises(ConfigError):
            gpu_power.power(1.0, 1.0, 0.5, -0.1)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigError):
            GpuPowerModel(-1.0, 0.0, 0.0, 0.0, 0.0)


class TestCpuPower:
    def test_voltage_floor_and_peak(self, cpu_power):
        assert cpu_power.voltage_ratio(1.0) == 1.0
        assert cpu_power.voltage_ratio(cpu_power.f_floor_ratio) == pytest.approx(0.75)

    def test_voltage_clamped_below_floor(self, cpu_power):
        assert cpu_power.voltage_ratio(0.1) == pytest.approx(0.75)

    def test_voltage_monotone(self, cpu_power):
        ratios = [0.3, 0.5, 0.7, 0.9, 1.0]
        volts = [cpu_power.voltage_ratio(r) for r in ratios]
        assert volts == sorted(volts)

    def test_dvfs_superlinear_savings(self, cpu_power):
        """Dynamic power drops faster than linearly in f (f * V^2 law)."""
        d_full = cpu_power.power(1.0, 1.0) - cpu_power.idle_power(1.0)
        d_half = cpu_power.power(0.5, 1.0) - cpu_power.idle_power(0.5)
        assert d_half < 0.5 * d_full

    def test_idle_power_is_static_only(self, cpu_power):
        assert cpu_power.idle_power(1.0) == pytest.approx(15.0)
        assert cpu_power.idle_power(0.3) == pytest.approx(15.0)

    def test_peak_power(self, cpu_power):
        assert cpu_power.peak_power == pytest.approx(55.0)

    def test_spin_at_floor_below_spin_at_peak(self, cpu_power):
        floor = cpu_power.f_floor_ratio
        assert cpu_power.power(floor, 1.0) < cpu_power.power(1.0, 1.0)

    def test_rejects_bad_inputs(self, cpu_power):
        with pytest.raises(ConfigError):
            cpu_power.power(0.0, 0.5)
        with pytest.raises(ConfigError):
            cpu_power.power(1.0, 1.1)

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigError):
            CpuPowerModel(15.0, 40.0, v_floor_ratio=0.0)
        with pytest.raises(ConfigError):
            CpuPowerModel(15.0, 40.0, f_floor_ratio=1.5)
        with pytest.raises(ConfigError):
            CpuPowerModel(-15.0, 40.0)
