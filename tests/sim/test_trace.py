"""Tests for the trace recorder."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.trace import Trace, TraceRecorder


class TestRecorder:
    def test_record_and_freeze(self):
        rec = TraceRecorder()
        rec.record("power", 0.0, 100.0)
        rec.record("power", 1.0, 120.0)
        trace = rec.trace("power")
        assert len(trace) == 2
        assert trace.final == 120.0

    def test_record_many(self):
        rec = TraceRecorder()
        rec.record_many(1.0, a=1.0, b=2.0)
        assert rec.trace("a").values[0] == 1.0
        assert rec.trace("b").values[0] == 2.0

    def test_channels_sorted(self):
        rec = TraceRecorder()
        rec.record("z", 0.0, 1.0)
        rec.record("a", 0.0, 1.0)
        assert rec.channels == ["a", "z"]

    def test_contains(self):
        rec = TraceRecorder()
        rec.record("x", 0.0, 1.0)
        assert "x" in rec and "y" not in rec

    def test_non_monotonic_time_raises(self):
        rec = TraceRecorder()
        rec.record("x", 5.0, 1.0)
        with pytest.raises(SimulationError):
            rec.record("x", 4.0, 2.0)

    def test_unknown_channel_raises(self):
        with pytest.raises(SimulationError):
            TraceRecorder().trace("missing")

    def test_as_dict(self):
        rec = TraceRecorder()
        rec.record_many(0.0, a=1.0, b=2.0)
        d = rec.as_dict()
        assert set(d) == {"a", "b"}


class TestTrace:
    def _trace(self, times, values, name="t"):
        return Trace(name, np.asarray(times, float), np.asarray(values, float))

    def test_mean(self):
        assert self._trace([0, 1, 2], [1.0, 2.0, 3.0]).mean() == 2.0

    def test_time_weighted_mean(self):
        # Value 10 held for 1 s, value 0 held for 3 s -> 2.5.
        trace = self._trace([0.0, 1.0, 4.0], [10.0, 0.0, 99.0])
        assert trace.time_weighted_mean() == pytest.approx(2.5)

    def test_time_weighted_mean_needs_two_samples(self):
        with pytest.raises(SimulationError):
            self._trace([0.0], [1.0]).time_weighted_mean()

    def test_window(self):
        trace = self._trace([0, 1, 2, 3], [1, 2, 3, 4])
        sub = trace.window(1.0, 2.0)
        assert list(sub.values) == [2.0, 3.0]

    def test_empty_final_raises(self):
        with pytest.raises(SimulationError):
            _ = self._trace([], []).final

    def test_mismatched_lengths_raise(self):
        with pytest.raises(SimulationError):
            Trace("x", np.zeros(2), np.zeros(3))
