"""The decision audit trail: recording, serialization, and the
``explain`` narrative."""

import json

import numpy as np
import pytest

from repro.core.config import GreenGpuConfig
from repro.core.policies import GreenGpuPolicy
from repro.core.wma import best_and_runner_up
from repro.errors import SerializationError
from repro.experiments.common import (
    scaled_config,
    scaled_options,
    scaled_workload,
)
from repro.runtime.executor import run_workload
from repro.telemetry import AuditTrail, format_explanation, read_audit
from repro.telemetry.audit import (
    AUDIT_NAME,
    audit_path,
    decision_flips,
    scaling_records,
)

TIME_SCALE = 0.05


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One seeded GreenGPU run with its trail written out."""
    directory = tmp_path_factory.mktemp("audit-run")
    trail = AuditTrail()
    run_workload(
        scaled_workload("kmeans", TIME_SCALE), GreenGpuPolicy(config=scaled_config(TIME_SCALE)),
        n_iterations=2, options=scaled_options(TIME_SCALE), audit=trail,
    )
    trail.write(directory)
    return directory


class TestAuditTrail:
    def test_live_run_records_both_tiers(self, run_dir):
        records = read_audit(audit_path(run_dir))
        kinds = {r["kind"] for r in records}
        assert "scaling" in kinds and "division" in kinds

    def test_scaling_record_schema(self, run_dir):
        records = read_audit(audit_path(run_dir))
        record = next(r for r in records if r["kind"] == "scaling")
        for key in ("tick", "t_sim", "u_core", "u_mem", "source",
                    "core_level", "mem_level", "f_core", "f_mem",
                    "runner_up", "margin", "flipped", "actuated",
                    "degraded", "core_loss", "mem_loss", "weights"):
            assert key in record, key
        assert record["source"] in ("fresh", "fallback")
        assert 0.0 <= record["margin"] <= 1.0
        assert len(record["weights"]) == len(record["core_loss"])

    def test_division_record_schema(self, run_dir):
        records = read_audit(audit_path(run_dir))
        record = next(r for r in records if r["kind"] == "division")
        for key in ("index", "t_sim", "tc", "tg", "r_prev", "r_next",
                    "moved", "held_by_safeguard", "frozen"):
            assert key in record, key

    def test_records_are_time_ordered(self, run_dir):
        records = read_audit(audit_path(run_dir))
        times = [r["t_sim"] for r in records]
        assert times == sorted(times)

    def test_flip_flag_matches_pair_changes(self, run_dir):
        ticks = [r for r in scaling_records(read_audit(audit_path(run_dir)))
                 if r["kind"] == "scaling"]
        pairs = [(r["core_level"], r["mem_level"]) for r in ticks]
        expected = [False] + [a != b for a, b in zip(pairs, pairs[1:])]
        assert [bool(r["flipped"]) for r in ticks] == expected
        assert decision_flips(read_audit(audit_path(run_dir))) == [
            r["tick"] for r, flip in zip(ticks, expected) if flip
        ]

    def test_skip_notes_consume_a_tick(self):
        trail = AuditTrail()
        trail.note_skip(1.0, degraded=False)
        trail.note_skip(2.0, degraded=True)
        records = trail.records()
        assert [r["tick"] for r in records] == [0, 1]
        assert records[1]["degraded"] is True

    def test_weights_are_copied_not_aliased(self):
        from repro.core.wma import ScalingDecision

        weights = np.ones((2, 2))
        decision = ScalingDecision(
            core_level=0, mem_level=0, f_core=1.0, f_mem=1.0,
            core_loss=np.zeros(2), mem_loss=np.zeros(2),
        )
        trail = AuditTrail()
        trail.note_scaling(0.0, 0.5, 0.5, decision, "fresh",
                           actuated=True, degraded=False, weights=weights)
        weights[0, 0] = 99.0  # the table mutates after the note
        assert trail.records()[0]["weights"][0][0] == 1.0

    def test_written_file_is_valid_jsonl(self, run_dir):
        with open(run_dir / AUDIT_NAME, encoding="utf-8") as handle:
            for line in handle:
                assert isinstance(json.loads(line), dict)


class TestReadAudit:
    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(SerializationError):
            read_audit(audit_path(tmp_path))

    def test_missing_ok_reads_empty(self, tmp_path):
        assert read_audit(audit_path(tmp_path), missing_ok=True) == []

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / AUDIT_NAME
        path.write_text('{"kind":"skip","tick":0,"t_sim":0.0}\n{oops\n')
        with pytest.raises(SerializationError, match=":2:"):
            read_audit(path)

    def test_record_without_kind_is_corrupt(self, tmp_path):
        path = tmp_path / AUDIT_NAME
        path.write_text('{"tick": 0}\n')
        with pytest.raises(SerializationError, match="kind"):
            read_audit(path)


class TestBestAndRunnerUp:
    def test_margin_and_pairs(self):
        weights = np.array([[1.0, 0.5], [0.25, 0.8]])
        best, runner_up, margin = best_and_runner_up(weights)
        assert best == (0, 0)
        assert runner_up == (1, 1)
        assert margin == pytest.approx(0.2)

    def test_tie_gives_zero_margin(self):
        best, runner_up, margin = best_and_runner_up(np.ones((2, 3)))
        assert margin == 0.0
        assert best != runner_up

    def test_singleton_table(self):
        best, runner_up, margin = best_and_runner_up(np.array([[2.0]]))
        assert best == runner_up == (0, 0)
        assert margin == 0.0


class TestFormatExplanation:
    def test_summary_counts_flips_and_ticks(self, run_dir):
        text = format_explanation(run_dir)
        records = read_audit(audit_path(run_dir))
        n_ticks = len(scaling_records(records))
        n_flips = len(decision_flips(records))
        assert f"{n_ticks} scaling ticks ({n_flips} decision flips" in text

    def test_every_flip_appears_in_the_narrative(self, run_dir):
        text = format_explanation(run_dir)
        for tick in decision_flips(read_audit(audit_path(run_dir))):
            assert f"tick {tick:>4} " in text
        assert text.count("FLIP from") == len(
            decision_flips(read_audit(audit_path(run_dir)))
        )

    def test_steady_stretches_are_elided(self, run_dir):
        text = format_explanation(run_dir)
        n_ticks = len(scaling_records(read_audit(audit_path(run_dir))))
        assert len(text.splitlines()) < n_ticks  # not one line per tick
        assert "steady at" in text

    def test_tick_detail_shows_the_evidence(self, run_dir):
        tick = decision_flips(read_audit(audit_path(run_dir)))[0]
        text = format_explanation(run_dir, tick=tick)
        assert "core loss:" in text and "mem loss :" in text
        assert "weights" in text
        assert "runner-up" in text
        assert "decision FLIPPED here" in text

    def test_unknown_tick_raises_typed_error(self, run_dir):
        with pytest.raises(SerializationError, match="no audit record"):
            format_explanation(run_dir, tick=10_000)

    def test_missing_trail_raises_typed_error(self, tmp_path):
        with pytest.raises(SerializationError):
            format_explanation(tmp_path)

    def test_static_policy_trail_reports_divisions_only(self, tmp_path):
        from repro.core.policies import BestPerformancePolicy

        trail = AuditTrail()
        run_workload(
            scaled_workload("kmeans", TIME_SCALE), BestPerformancePolicy(),
            n_iterations=1, options=scaled_options(TIME_SCALE), audit=trail,
        )
        trail.write(tmp_path)
        text = format_explanation(tmp_path)
        assert "0 scaling ticks" in text


class TestDeterminism:
    def test_identical_runs_produce_identical_trails(self, run_dir, tmp_path):
        trail = AuditTrail()
        run_workload(
            scaled_workload("kmeans", TIME_SCALE), GreenGpuPolicy(config=scaled_config(TIME_SCALE)),
            n_iterations=2, options=scaled_options(TIME_SCALE), audit=trail,
        )
        trail.write(tmp_path)
        assert (tmp_path / AUDIT_NAME).read_text() == (
            run_dir / AUDIT_NAME
        ).read_text()
