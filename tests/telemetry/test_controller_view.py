"""The control loop seen through telemetry.

ControlHealth is now a *view* over telemetry counters; these tests pin
the contract: the legacy dataclass, the injector's counts, and the
exported metrics must agree exactly on a seeded faulty run — with the
backend enabled or disabled.
"""

import pytest

from repro.core.config import GreenGpuConfig
from repro.core.policies import GreenGpuPolicy
from repro.experiments.common import scaled_options, scaled_workload
from repro.faults.health import HEALTH_FIELDS, ControlHealth, counter_name
from repro.faults.injector import fault_profile
from repro.runtime.executor import run_workload
from repro.telemetry import Telemetry

TIME_SCALE = 0.03


def faulty_policy(seed: int = 7) -> GreenGpuPolicy:
    return GreenGpuPolicy(
        config=GreenGpuConfig(scaling_interval_s=0.2)
    ).with_faults(fault_profile("moderate", seed=seed))


def run_faulty(telemetry=None, seed: int = 7):
    return run_workload(
        scaled_workload("kmeans", TIME_SCALE), faulty_policy(seed),
        n_iterations=3, options=scaled_options(TIME_SCALE),
        telemetry=telemetry,
    )


class TestHealthView:
    def test_health_equals_telemetry_counters(self):
        tel = Telemetry()
        result = run_faulty(tel)
        assert result.health.total_events > 0, "fault plan injected nothing"
        for field in HEALTH_FIELDS:
            counter = tel.registry.counter(
                counter_name(field), workload=result.workload,
                policy=result.policy,
            )
            assert int(counter.value) == getattr(result.health, field), field

    def test_health_works_with_telemetry_disabled(self):
        enabled = run_faulty(Telemetry())
        disabled = run_faulty(None)
        assert disabled.health.as_dict() == enabled.health.as_dict()
        assert disabled.health.total_events > 0

    def test_health_dataclass_round_trip_unchanged(self):
        health = ControlHealth(monitor_faults=3, retries=2, fallbacks=1)
        assert ControlHealth.from_dict(health.as_dict()) == health
        assert health.total_events == 6
        assert not health.degraded

    def test_counter_name_contract(self):
        assert counter_name("retries") == "ctrl_retries_total"
        assert set(HEALTH_FIELDS) == {
            "monitor_faults", "actuation_faults", "retries", "fallbacks",
            "skipped_ticks", "degraded_entries", "recoveries",
            "frozen_divisions",
        }


class TestInjectorView:
    def test_injected_faults_counted_in_registry(self):
        tel = Telemetry()
        result = run_faulty(tel)
        total = sum(
            c.value for c in tel.registry.counters()
            if c.name == "faults_injected_total"
        )
        assert total > 0
        fault_events = [e for e in tel.events
                        if e.get("name") == "fault_injected"]
        assert len(fault_events) == total

    def test_injector_counts_identical_without_telemetry(self):
        # counts is a registry-backed view either way; the seeded draw
        # stream makes both runs inject the identical fault sequence.
        from repro.core.controller import GreenGpuController  # noqa: F401

        with_tel = run_faulty(Telemetry())
        without = run_faulty(None)
        with_faults = {
            k: v for k, v in with_tel.traces.items() if k.startswith("fault_")
        }
        without_faults = {
            k: v for k, v in without.traces.items() if k.startswith("fault_")
        }
        assert sorted(with_faults) == sorted(without_faults)


class TestRunInstrumentation:
    @pytest.fixture(scope="class")
    def run(self):
        tel = Telemetry()
        result = run_faulty(tel)
        return tel, result

    def test_energy_gauges_match_result(self, run):
        tel, result = run
        labels = dict(workload=result.workload, policy=result.policy)
        assert tel.registry.gauge("run_total_energy_j", **labels).value == (
            pytest.approx(result.total_energy_j)
        )
        assert tel.registry.gauge("run_time_s", **labels).value == (
            pytest.approx(result.total_s)
        )
        assert tel.registry.gauge("run_avg_power_w", **labels).value == (
            pytest.approx(result.total_energy_j / result.total_s)
        )

    def test_tick_spans_recorded(self, run):
        tel, result = run
        labels = dict(workload=result.workload, policy=result.policy)
        scaling = tel.registry.histogram("span_sim_s", span="scaling_tick",
                                         **labels)
        ondemand = tel.registry.histogram("span_sim_s", span="ondemand_tick",
                                          **labels)
        assert scaling.count > 0
        assert ondemand.count > scaling.count  # 0.1 s vs 3 s periods

    def test_monitor_read_spans_per_device(self, run):
        tel, result = run
        labels = dict(workload=result.workload, policy=result.policy)
        for device in ("gpu", "cpu"):
            hist = tel.registry.histogram("span_sim_s", span="monitor_read",
                                          device=device, **labels)
            assert hist.count > 0, device

    def test_wma_trajectory_events(self, run):
        tel, _ = run
        updates = [e for e in tel.events
                   if e.get("type") == "event" and e.get("name") == "wma_update"]
        assert updates, "no wma_update events recorded"
        for event in updates:
            assert {"f_core", "f_mem", "core_level", "mem_level",
                    "w_max"} <= set(event)

    def test_iteration_events(self, run):
        tel, result = run
        iterations = [e for e in tel.events
                      if e.get("type") == "event" and e.get("name") == "iteration"]
        assert len(iterations) == result.n_iterations

    def test_sim_clock_task_dispatch_counted(self, run):
        tel, result = run
        labels = dict(workload=result.workload, policy=result.policy)
        wma = tel.registry.counter("clock_dispatch_total", task="wma-scaling",
                                   **labels)
        assert wma.value > 0
