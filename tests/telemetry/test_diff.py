"""The run-diff engine: delta extraction, divergence detection, and the
``--fail-on`` threshold gates."""

import pytest

from repro.core.policies import GreenGpuPolicy
from repro.errors import ConfigError, SerializationError
from repro.experiments.common import (
    scaled_config,
    scaled_options,
    scaled_workload,
)
from repro.runtime.executor import run_workload
from repro.telemetry import AuditTrail, Telemetry, diff_runs, export_telemetry
from repro.telemetry.diff import (
    RunDelta,
    check_thresholds,
    format_delta,
    parse_fail_on,
)

TIME_SCALE = 0.05


def _record_run(directory, *, workload="kmeans", iterations=2):
    telemetry = Telemetry()
    trail = AuditTrail()
    run_workload(
        scaled_workload(workload, TIME_SCALE),
        GreenGpuPolicy(config=scaled_config(TIME_SCALE)),
        n_iterations=iterations, options=scaled_options(TIME_SCALE),
        telemetry=telemetry, audit=trail,
    )
    export_telemetry(telemetry, directory)
    trail.write(directory)


@pytest.fixture(scope="module")
def twin_runs(tmp_path_factory):
    """Two identically-seeded runs plus one genuinely different run."""
    root = tmp_path_factory.mktemp("diff-runs")
    a, b, other = root / "a", root / "b", root / "other"
    _record_run(a)
    _record_run(b)
    _record_run(other, iterations=3)
    return a, b, other


class TestDiffRuns:
    def test_identical_runs_are_not_divergent(self, twin_runs):
        a, b, _ = twin_runs
        delta = diff_runs(a, b)
        assert not delta.divergent
        assert delta.energy_rel == 0.0
        assert delta.time_rel == 0.0
        assert delta.first_divergence_tick is None
        assert delta.metric_diffs == ()
        assert delta.health_drift == {}
        assert delta.flip_delta == 0

    def test_different_runs_are_divergent(self, twin_runs):
        a, _, other = twin_runs
        delta = diff_runs(a, other)
        assert delta.divergent
        assert delta.energy_rel != 0.0
        assert delta.ticks_a != delta.ticks_b
        assert delta.metric_diffs

    def test_first_divergence_points_at_the_tick(self, twin_runs):
        a, _, other = twin_runs
        delta = diff_runs(a, other)
        # Same seed and workload: the trajectories agree up to the
        # shorter run's end, so divergence is a length effect here.
        assert delta.first_divergence_tick is not None
        assert delta.first_divergence_tick <= min(delta.ticks_a, delta.ticks_b)

    def test_missing_snapshot_raises_typed_error(self, twin_runs, tmp_path):
        a, _, _ = twin_runs
        with pytest.raises(SerializationError):
            diff_runs(a, tmp_path)

    def test_missing_audit_is_tolerated(self, twin_runs, tmp_path):
        import os
        import shutil

        a, b, _ = twin_runs
        clone = tmp_path / "no-audit"
        shutil.copytree(b, clone)
        os.remove(clone / "audit.jsonl")
        delta = diff_runs(a, clone)
        assert delta.ticks_b == 0  # trail absent, metrics still compared
        assert delta.energy_rel == 0.0


class TestThresholds:
    def test_parse_percent_and_fraction(self):
        assert parse_fail_on(["energy=2%"]) == {"energy": 0.02}
        assert parse_fail_on(["time=0.1"]) == {"time": 0.1}
        assert parse_fail_on(["energy=2%,flips=0"]) == {
            "energy": 0.02, "flips": 0.0,
        }
        assert parse_fail_on(["energy=5%", "time=10%"]) == {
            "energy": 0.05, "time": 0.1,
        }
        assert parse_fail_on(None) == {}

    @pytest.mark.parametrize("spec", ["energy", "watts=2%", "energy=x",
                                      "energy=-1"])
    def test_bad_specs_raise_config_error(self, spec):
        with pytest.raises(ConfigError):
            parse_fail_on([spec])

    def test_identical_runs_pass_every_gate(self, twin_runs):
        a, b, _ = twin_runs
        delta = diff_runs(a, b)
        assert check_thresholds(
            delta, parse_fail_on(["energy=2%,time=2%,flips=0"])
        ) == []

    def test_energy_gate_trips_on_a_real_difference(self, twin_runs):
        a, _, other = twin_runs
        delta = diff_runs(a, other)
        assert abs(delta.energy_rel) > 1e-4
        tight = {"energy": abs(delta.energy_rel) / 2}
        assert check_thresholds(delta, tight)

    def test_missing_gauge_is_a_violation_not_a_pass(self):
        delta = RunDelta(
            dir_a="a", dir_b="b", energy_a=None, energy_b=1.0,
            time_a=None, time_b=None, ticks_a=0, ticks_b=0,
            flips_a=0, flips_b=0, first_divergence_tick=None,
            metric_diffs=(),
        )
        violations = check_thresholds(delta, {"energy": 0.02})
        assert violations and "not comparable" in violations[0]


class TestFormatDelta:
    def test_identical_verdict(self, twin_runs):
        a, b, _ = twin_runs
        text = format_delta(diff_runs(a, b))
        assert "runs identical (modulo wall clock)" in text
        assert "no divergence" in text

    def test_divergent_verdict_names_the_tick(self, twin_runs):
        a, _, other = twin_runs
        delta = diff_runs(a, other)
        text = format_delta(delta)
        assert "DIVERGENT" in text
        assert f"diverge at tick {delta.first_divergence_tick}" in text
