"""Exporter golden files and typed read errors."""

import json
import os

import pytest

from repro.errors import SerializationError
from repro.telemetry import NOOP, Telemetry
from repro.telemetry.exporters import (
    CSV_NAME,
    EVENTS_NAME,
    MARKDOWN_NAME,
    PROMETHEUS_NAME,
    SNAPSHOT_NAME,
    export_telemetry,
    read_events,
    read_snapshot,
    render_csv,
    render_jsonl,
    render_prometheus,
    write_exports,
)
from repro.telemetry.registry import MetricsRegistry


def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("faults_total", kind="timeout").inc(3)
    registry.gauge("power_w").set(250.5, t=1.0)
    hist = registry.histogram("tick_s")
    for v in (0.1, 0.2, 0.3, 0.4):
        hist.observe(v)
    return registry


GOLDEN_PROM = """\
# TYPE faults_total counter
faults_total{kind="timeout"} 3.0
# TYPE power_w gauge
power_w 250.5
# TYPE tick_s summary
tick_s{quantile="0.5"} 0.25
tick_s{quantile="0.95"} 0.38499999999999995
tick_s{quantile="0.99"} 0.39699999999999996
tick_s_sum 1.0
tick_s_count 4
"""

GOLDEN_CSV = """\
kind,name,labels,value,count,mean,p50,p95,p99,max
counter,faults_total,kind=timeout,3.0,,,,,,
gauge,power_w,,250.5,,,,,,
histogram,tick_s,,,4,0.25,0.25,0.38499999999999995,0.39699999999999996,0.4
"""


class TestGoldenRenders:
    def test_prometheus_exposition(self):
        assert render_prometheus(small_registry()) == GOLDEN_PROM

    def test_csv_summary(self):
        assert render_csv(small_registry()) == GOLDEN_CSV

    def test_jsonl_is_compact_and_ordered(self):
        events = [{"type": "event", "name": "b", "t_sim": 1.0},
                  {"type": "event", "name": "a", "t_sim": 2.0}]
        text = render_jsonl(events)
        lines = text.splitlines()
        assert len(lines) == 2
        # Insertion order preserved (it is a timeline, not a table).
        assert json.loads(lines[0])["name"] == "b"
        assert ": " not in lines[0] and ", " not in lines[0]

    def test_jsonl_unwraps_numpy_scalars(self):
        np = pytest.importorskip("numpy")
        text = render_jsonl([{"level": np.int64(3), "w": np.float64(0.5)}])
        assert json.loads(text) == {"level": 3, "w": 0.5}

    def test_renders_are_deterministic(self):
        assert render_prometheus(small_registry()) == render_prometheus(
            small_registry()
        )

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", path='say "hi"\nback\\slash').inc()
        text = render_prometheus(registry)
        assert r'path="say \"hi\"\nback\\slash"' in text
        # The exposition must stay line-oriented: no raw newline leaks
        # out of the label value into the sample line.
        sample_lines = [l for l in text.splitlines() if "c_total{" in l]
        assert len(sample_lines) == 1


class TestChromeTrace:
    def span_events(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        return tel.events

    def test_perfetto_shape(self):
        from repro.telemetry.exporters import render_chrome_trace

        data = json.loads(render_chrome_trace(self.span_events()))
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        assert data["displayTimeUnit"] == "ms"
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["dur"] > 0.0
            assert len(event["args"]["span_id"]) == 16

    def test_process_metadata_per_job(self):
        from repro.telemetry.exporters import render_chrome_trace

        events = [dict(e, job="w1") for e in self.span_events()]
        events += [dict(e, job="w2") for e in self.span_events()]
        data = json.loads(render_chrome_trace(events))
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert sorted(m["args"]["name"] for m in meta) == ["w1", "w2"]
        pids = {e["pid"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2

    def test_tid_is_depth(self):
        from repro.telemetry.exporters import render_chrome_trace

        data = json.loads(render_chrome_trace(self.span_events()))
        by_name = {e["name"]: e for e in data["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["outer"]["tid"] == 1
        assert by_name["inner"]["tid"] == 2

    def test_non_span_events_are_ignored(self):
        from repro.telemetry.exporters import render_chrome_trace

        data = json.loads(render_chrome_trace(
            [{"type": "event", "name": "x", "t_unix": 1.0}]))
        assert data["traceEvents"] == []

    def test_write_exports_includes_trace_json(self, tmp_path):
        from repro.telemetry.exporters import CHROME_TRACE_NAME

        write_exports(tmp_path, small_registry(), self.span_events())
        assert (tmp_path / CHROME_TRACE_NAME).exists()


class TestWriteExports:
    def test_all_files_written(self, tmp_path):
        write_exports(tmp_path, small_registry(), [{"type": "event", "name": "x"}])
        for name in (SNAPSHOT_NAME, EVENTS_NAME, PROMETHEUS_NAME, CSV_NAME,
                     MARKDOWN_NAME):
            assert (tmp_path / name).exists(), name

    def test_snapshot_counts_events(self, tmp_path):
        write_exports(tmp_path, small_registry(), [{"a": 1}, {"b": 2}])
        snapshot = read_snapshot(str(tmp_path / SNAPSHOT_NAME))
        assert snapshot["n_events"] == 2

    def test_export_telemetry_noop_writes_nothing(self, tmp_path):
        target = tmp_path / "out"
        export_telemetry(NOOP, target)
        assert not target.exists()

    def test_export_telemetry_enabled_writes(self, tmp_path):
        tel = Telemetry()
        tel.counter("c").inc()
        export_telemetry(tel, tmp_path / "out")
        assert (tmp_path / "out" / SNAPSHOT_NAME).exists()


class TestReadErrors:
    def test_missing_snapshot_is_typed(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            read_snapshot(str(tmp_path / "nope.json"))

    def test_corrupt_snapshot_is_typed(self, tmp_path):
        path = tmp_path / SNAPSHOT_NAME
        path.write_text('{"schema": 1, "counters": [')
        with pytest.raises(SerializationError, match="corrupt"):
            read_snapshot(str(path))

    def test_missing_events_is_empty(self, tmp_path):
        assert read_events(str(tmp_path / "nope.jsonl")) == []

    def test_corrupt_event_line_is_typed(self, tmp_path):
        path = tmp_path / EVENTS_NAME
        path.write_text('{"ok": true}\n{broken\n')
        with pytest.raises(SerializationError, match=":2:"):
            read_events(str(path))
