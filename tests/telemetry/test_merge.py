"""Cross-process aggregation: worker exports, merge, and the parity
contract (parallel == serial modulo wall-clock fields)."""

import json

import pytest

from repro.core.config import GreenGpuConfig
from repro.core.policies import GreenGpuPolicy, StaticPolicy
from repro.experiments.common import scaled_options, scaled_workload
from repro.runtime.executor import run_workload
from repro.telemetry import Telemetry, export_worker, merge_directory
from repro.telemetry.exporters import SNAPSHOT_NAME, read_snapshot
from repro.telemetry.merge import strip_wall_clock, worker_dir

TIME_SCALE = 0.03


def _policy(r: float) -> StaticPolicy:
    return StaticPolicy(0, 0, ratio=r, name=f"static-division-{r:.2f}")


def _run_point(r: float, telemetry: Telemetry) -> None:
    run_workload(
        scaled_workload("kmeans", TIME_SCALE), _policy(r), n_iterations=1,
        options=scaled_options(TIME_SCALE), telemetry=telemetry,
    )


class TestWorkerExport:
    def test_unsafe_name_characters_are_mapped(self, tmp_path):
        import os

        path = worker_dir(tmp_path, "r=0.5/../../evil")
        # Separators are sanitized, so the job name stays one component
        # and the normalized path cannot escape the telemetry directory.
        component = os.path.basename(path)
        assert os.sep not in component
        assert os.path.normpath(path).startswith(str(tmp_path))

    def test_export_worker_writes_under_workers(self, tmp_path):
        tel = Telemetry()
        tel.counter("c").inc()
        target = export_worker(tel, tmp_path, "job-1")
        assert target == worker_dir(tmp_path, "job-1")
        assert (tmp_path / "workers" / "job-1" / SNAPSHOT_NAME).exists()


class TestMergeDirectory:
    def test_empty_merge_still_writes_run_exports(self, tmp_path):
        merge_directory(tmp_path)
        assert (tmp_path / SNAPSHOT_NAME).exists()

    def test_extra_telemetry_is_folded_in(self, tmp_path):
        tel = Telemetry()
        tel.counter("harness_jobs_total").inc(4)
        merged = merge_directory(tmp_path, extra=[tel])
        assert merged.counter("harness_jobs_total").value == 4.0

    def test_worker_merge_equals_single_process_run(self, tmp_path):
        """Per-worker files merged == the same runs through one backend."""
        serial = Telemetry()
        _run_point(0.0, serial)
        _run_point(0.3, serial)

        for r in (0.0, 0.3):
            worker = Telemetry()
            _run_point(r, worker)
            export_worker(worker, tmp_path, f"r={r:.4f}")
        merged = merge_directory(tmp_path)

        assert strip_wall_clock(merged.snapshot()) == strip_wall_clock(
            serial.registry.snapshot()
        )

    def test_merge_is_independent_of_worker_completion_order(self, tmp_path):
        """Fold order is sorted-by-name, so writing workers in reverse
        order must produce byte-identical run-level snapshots."""
        forward, backward = tmp_path / "fwd", tmp_path / "bwd"
        for r in (0.0, 0.3):
            tel = Telemetry()
            _run_point(r, tel)
            export_worker(tel, forward, f"r={r:.4f}")
        for r in (0.3, 0.0):
            tel = Telemetry()
            _run_point(r, tel)
            export_worker(tel, backward, f"r={r:.4f}")
        merge_directory(forward)
        merge_directory(backward)
        a = strip_wall_clock(read_snapshot(str(forward / SNAPSHOT_NAME)))
        b = strip_wall_clock(read_snapshot(str(backward / SNAPSHOT_NAME)))
        assert a == b


class TestStripWallClock:
    def test_strips_only_wall_s_suffixed_metrics(self):
        tel = Telemetry()
        tel.counter("jobs_total").inc()
        tel.histogram("span_wall_s", span="x").observe(1.0)
        tel.histogram("span_sim_s", span="x").observe(1.0)
        tel.histogram("harness_job_wall_s").observe(0.5)
        stripped = strip_wall_clock(tel.registry.snapshot())
        names = {h["name"] for h in stripped["histograms"]}
        assert names == {"span_sim_s"}
        assert {c["name"] for c in stripped["counters"]} == {"jobs_total"}


class TestControlledRunDeterminism:
    def test_identical_seeded_runs_identical_telemetry(self):
        """Bit-identical reruns: same snapshot after stripping wall time."""
        from repro.faults.injector import fault_profile

        def go():
            tel = Telemetry()
            run_workload(
                scaled_workload("kmeans", TIME_SCALE),
                GreenGpuPolicy(
                    config=GreenGpuConfig(scaling_interval_s=0.2)
                ).with_faults(fault_profile("moderate", seed=11)),
                n_iterations=2, options=scaled_options(TIME_SCALE),
                telemetry=tel,
            )
            return tel

        a, b = go(), go()
        sa = strip_wall_clock(a.registry.snapshot())
        sb = strip_wall_clock(b.registry.snapshot())
        assert json.dumps(sa, sort_keys=True) == json.dumps(sb, sort_keys=True)
