"""The disabled backend: shared singletons, no allocations, no effects."""

import gc
import sys

import pytest

from repro.telemetry import NOOP, NullTelemetry
from repro.telemetry.core import (
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    _NULL_SPAN,
)


class TestSingletons:
    def test_disabled_flag(self):
        assert NOOP.enabled is False
        assert isinstance(NOOP, NullTelemetry)

    def test_instruments_are_shared(self):
        assert NOOP.counter("a", k="v") is NOOP.counter("b")
        assert NOOP.counter("a") is _NULL_COUNTER
        assert NOOP.gauge("g") is _NULL_GAUGE
        assert NOOP.histogram("h") is _NULL_HISTOGRAM
        assert NOOP.span("s") is _NULL_SPAN

    def test_null_instruments_absorb_everything(self):
        NOOP.counter("c").inc(5)
        NOOP.gauge("g").set(1.0, t=2.0)
        NOOP.histogram("h").observe(3.0)
        NOOP.event("x", field=1)
        assert NOOP.counter("c").value == 0.0
        assert NOOP.gauge("g").value == 0.0
        assert NOOP.histogram("h").count == 0
        assert NOOP.events == []

    def test_null_span_context_manager(self):
        with NOOP.span("tick", device="gpu"):
            pass

    def test_null_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with NOOP.span("tick"):
                raise RuntimeError("boom")


class TestAllocationFree:
    def test_hot_path_allocates_nothing(self):
        """The disabled probe sequence must not create objects.

        ``sys.getallocatedblocks`` is exact on CPython: run the probe
        loop twice (the first pass warms caches), then assert the block
        count is unchanged across the second pass.
        """
        counter = NOOP.counter("c")
        hist = NOOP.histogram("h")
        span = NOOP.span("s")

        def probe():
            for _ in range(1000):
                counter.inc()
                hist.observe(1.0)
                with span:
                    pass

        probe()
        gc.collect()
        before = sys.getallocatedblocks()
        probe()
        gc.collect()
        after = sys.getallocatedblocks()
        assert abs(after - before) <= 2  # interpreter background noise

    def test_instrument_fetch_allocates_only_kwargs(self):
        """Fetching null instruments creates no lasting objects."""
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(1000):
            NOOP.counter("c", workload="x")
            NOOP.span("s", device="gpu")
        gc.collect()
        after = sys.getallocatedblocks()
        assert abs(after - before) <= 2
