"""Registry semantics: instruments, identity, percentiles, snapshots."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import (
    HISTOGRAM_SAMPLE_CAP,
    Histogram,
    MetricsRegistry,
    label_key,
)


class TestLabelKey:
    def test_sorted_and_stringified(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_empty(self):
        assert label_key({}) == ()


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", route="a")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigError):
            counter.inc(-1.0)

    def test_reset(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(5)
        counter.reset()
        assert counter.value == 0.0

    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("c", k="v")
        b = registry.counter("c", k="v")
        other = registry.counter("c", k="w")
        assert a is b
        assert a is not other

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1, b=2) is registry.counter("c", b=2, a=1)


class TestKindConflicts:
    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ConfigError, match="already registered"):
            registry.histogram("x")


class TestGauge:
    def test_set_tracks_sim_time(self):
        gauge = MetricsRegistry().gauge("power_w")
        gauge.set(250.0, t=12.5)
        assert gauge.value == 250.0
        assert gauge.updated_at == 12.5

    def test_set_without_time_keeps_timestamp(self):
        gauge = MetricsRegistry().gauge("power_w")
        gauge.set(1.0, t=3.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.updated_at == 3.0


class TestHistogram:
    def test_exact_percentiles_under_cap(self):
        hist = MetricsRegistry().histogram("h")
        for v in range(101):  # 0..100
            hist.observe(float(v))
        assert hist.count == 101
        assert hist.p50 == 50.0
        assert hist.p95 == 95.0
        assert hist.p99 == 99.0
        assert hist.min == 0.0 and hist.max == 100.0
        assert hist.mean == pytest.approx(50.0)

    def test_empty_percentiles_are_zero(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.p50 == 0.0 and hist.percentile(0.99) == 0.0

    def test_decimation_bounds_memory(self):
        hist = Histogram("h", cap=64)
        for v in range(10_000):
            hist.observe(float(v))
        assert hist.count == 10_000
        assert len(hist._samples) < 64
        # Exact moments survive decimation.
        assert hist.min == 0.0 and hist.max == 9999.0
        assert hist.sum == pytest.approx(sum(range(10_000)))
        # Percentile estimate stays in the right neighbourhood.
        assert 4000.0 < hist.p50 < 6000.0

    def test_state_is_pure_function_of_sequence(self):
        a, b = Histogram("h", cap=32), Histogram("h", cap=32)
        values = [((i * 37) % 101) / 7.0 for i in range(5000)]
        for v in values:
            a.observe(v)
        for v in values:
            b.observe(v)
        assert a._samples == b._samples
        assert a._stride == b._stride
        assert a.percentile(0.9) == b.percentile(0.9)

    def test_default_cap(self):
        assert Histogram("h")._cap == HISTOGRAM_SAMPLE_CAP


class TestSnapshots:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc(3)
        registry.gauge("g").set(7.5, t=2.0)
        hist = registry.histogram("h", device="gpu")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        return registry

    def test_round_trip(self):
        registry = self._populated()
        clone = MetricsRegistry.from_snapshot(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_merge_adds_counters(self):
        registry = self._populated()
        registry.merge_snapshot(self._populated().snapshot())
        assert registry.counter("c", kind="x").value == 6.0

    def test_merge_concatenates_histograms(self):
        registry = self._populated()
        registry.merge_snapshot(self._populated().snapshot())
        hist = registry.histogram("h", device="gpu")
        assert hist.count == 6
        assert hist.sum == pytest.approx(12.0)

    def test_merge_gauge_last_writer_wins_by_sim_time(self):
        newer = MetricsRegistry()
        newer.gauge("g").set(99.0, t=10.0)
        older = MetricsRegistry()
        older.gauge("g").set(1.0, t=5.0)
        # Fold the *newer* snapshot first: arrival order must not matter.
        merged = MetricsRegistry()
        merged.merge_snapshot(newer.snapshot())
        merged.merge_snapshot(older.snapshot())
        assert merged.gauge("g").value == 99.0

    def test_merge_rejects_unknown_schema(self):
        with pytest.raises(ConfigError, match="schema"):
            MetricsRegistry().merge_snapshot({"schema": 99})

    def test_iteration_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        registry.counter("mm", b="2")
        registry.counter("mm", a="1")
        names = [(c.name, c.labels) for c in registry.counters()]
        assert names == sorted(names)
