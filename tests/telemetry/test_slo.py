"""SLO evaluation: compliance, burn rates, windows, gates, SLO files."""

import json

import pytest

from repro.errors import ConfigError, SerializationError
from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.slo import (
    DEFAULT_SLOS,
    SloSpec,
    burn_rate,
    check_slos,
    compliance_from_registry,
    evaluate_directory,
    evaluate_slos,
    load_slo_file,
    parse_fail_on,
    windowed_compliance,
)


def ratio_spec(target=0.9):
    return SloSpec(name="t", description="", target=target,
                   good=("good_total",), total=("all_total",))


class TestSpecValidation:
    def test_target_bounds(self):
        with pytest.raises(ConfigError, match="target"):
            SloSpec(name="x", description="", target=1.0, bad=("b",))

    def test_quantile_needs_histogram(self):
        with pytest.raises(ConfigError, match="quantile"):
            SloSpec(name="x", description="", target=0.5, kind="quantile")

    def test_ratio_needs_counters(self):
        with pytest.raises(ConfigError, match="ratio"):
            SloSpec(name="x", description="", target=0.5)

    def test_unknown_source(self):
        with pytest.raises(ConfigError, match="source"):
            SloSpec(name="x", description="", target=0.5, bad=("b",),
                    source="nope")


class TestCompliance:
    def test_ratio_good_over_total(self):
        registry = MetricsRegistry()
        registry.counter("good_total").inc(9)
        registry.counter("all_total").inc(10)
        compliance, n = compliance_from_registry(ratio_spec(), registry)
        assert compliance == pytest.approx(0.9)
        assert n == 10

    def test_ratio_infers_good_from_bad(self):
        spec = SloSpec(name="t", description="", target=0.9,
                       bad=("bad_total",), total=("all_total",))
        registry = MetricsRegistry()
        registry.counter("bad_total").inc(2)
        registry.counter("all_total").inc(10)
        compliance, _ = compliance_from_registry(spec, registry)
        assert compliance == pytest.approx(0.8)

    def test_no_data_is_none(self):
        assert compliance_from_registry(ratio_spec(),
                                        MetricsRegistry()) == (None, 0)

    def test_quantile_fraction_within_threshold(self):
        spec = SloSpec(name="q", description="", target=0.5, kind="quantile",
                       histogram="lat_s", threshold=0.25)
        registry = MetricsRegistry()
        for v in (0.1, 0.2, 0.3, 0.4):
            registry.histogram("lat_s").observe(v)
        compliance, n = compliance_from_registry(spec, registry)
        assert compliance == pytest.approx(0.5)
        assert n == 4

    def test_burn_rate_normalizes_error_budget(self):
        assert burn_rate(0.98, 0.99) == pytest.approx(2.0)
        assert burn_rate(None, 0.99) is None


class TestWindows:
    def test_window_filters_old_samples(self):
        samples = [(0.0, False), (100.0, True), (110.0, True)]
        assert windowed_compliance(samples, 60.0, 120.0) == pytest.approx(1.0)
        assert windowed_compliance(samples, 1000.0, 120.0) == pytest.approx(2 / 3)
        assert windowed_compliance([], 60.0, 120.0) is None

    def test_evaluate_slos_spans(self):
        tel = Telemetry()
        with tel.span("ok_tick"):
            pass
        with pytest.raises(ValueError):
            with tel.span("bad_tick"):
                raise ValueError("boom")
        results = evaluate_slos(tel.registry, tel.events,
                                specs=DEFAULT_SLOS, windows=(60.0,))
        span_slo = next(r for r in results if r.spec.name == "span-success")
        assert span_slo.compliance == pytest.approx(0.5)
        assert span_slo.violated
        assert span_slo.window_burns["60s"] == pytest.approx(50.0)

    def test_service_slos_read_no_data_outside_served_runs(self):
        results = evaluate_slos(MetricsRegistry(), [])
        deadline = next(r for r in results
                        if r.spec.name == "deadline-hit-rate")
        assert deadline.compliance is None
        assert not deadline.violated


class TestGates:
    def test_parse_fail_on(self):
        assert parse_fail_on(["violations=0,burn=2"]) == {
            "violations": 0.0, "burn": 2.0}
        with pytest.raises(ConfigError, match="fail-on"):
            parse_fail_on(["nope=1"])

    def test_violations_gate(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("tick"):
                raise ValueError("boom")
        results = evaluate_slos(tel.registry, tel.events)
        failures = check_slos(results, {"violations": 0.0})
        assert failures and "span-success" in failures[0]
        assert check_slos(results, {"violations": 1.0}) == []

    def test_burn_gate_skips_informational_targets(self):
        tel = Telemetry()
        with tel.span("tick"):
            pass
        # cache-hit-ratio (target 0) always "burns"; the gate must not fire.
        results = evaluate_slos(tel.registry, tel.events)
        assert check_slos(results, {"burn": 2.0}) == []


class TestDirectoryAndFiles:
    def test_evaluate_directory_requires_snapshot(self, tmp_path):
        with pytest.raises(SerializationError, match="--telemetry"):
            evaluate_directory(tmp_path)

    def test_evaluate_directory_round_trip(self, tmp_path):
        from repro.telemetry import export_telemetry

        tel = Telemetry()
        with tel.span("tick"):
            pass
        export_telemetry(tel, tmp_path)
        results = evaluate_directory(tmp_path)
        span_slo = next(r for r in results if r.spec.name == "span-success")
        assert span_slo.compliance == pytest.approx(1.0)

    def test_load_slo_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "custom", "target": 0.5, "bad": ["bad_total"],
             "total": ["all_total"]},
        ]}))
        specs = load_slo_file(str(path))
        assert len(specs) == 1 and specs[0].name == "custom"

    def test_load_slo_file_rejects_malformed(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{}")
        with pytest.raises(ConfigError, match="slos"):
            load_slo_file(str(path))
