"""Span tracing: nesting, dual time bases, error accounting."""

import pytest

from repro.errors import SimulationError
from repro.telemetry import Telemetry


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start


class TestSpanBasics:
    def test_span_records_sim_duration(self):
        tel = Telemetry()
        clock = FakeClock()
        tel.bind_clock(clock)
        with tel.span("tick"):
            clock.now = 2.5
        hist = tel.registry.histogram("span_sim_s", span="tick")
        assert hist.count == 1
        assert hist.sum == pytest.approx(2.5)

    def test_span_records_wall_duration(self):
        tel = Telemetry()
        with tel.span("tick"):
            pass
        hist = tel.registry.histogram("span_wall_s", span="tick")
        assert hist.count == 1
        assert hist.sum >= 0.0

    def test_unbound_clock_yields_sentinel(self):
        tel = Telemetry()
        with tel.span("tick"):
            pass
        event = tel.events[-1]
        assert event["sim_t0"] == -1.0 and event["sim_t1"] == -1.0

    def test_span_counts(self):
        tel = Telemetry()
        for _ in range(3):
            with tel.span("tick"):
                pass
        assert tel.registry.counter("span_total", span="tick").value == 3.0


class TestNesting:
    def test_depth_and_parent_recorded(self):
        tel = Telemetry()
        clock = FakeClock()
        tel.bind_clock(clock)
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        inner, outer = tel.events[-2], tel.events[-1]
        assert inner["name"] == "inner"
        assert inner["depth"] == 1 and inner["parent"] == "outer"
        assert outer["name"] == "outer"
        assert outer["depth"] == 0 and outer["parent"] is None

    def test_out_of_order_close_raises(self):
        tel = Telemetry()
        outer = tel.span("outer")
        inner = tel.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(SimulationError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_out_of_order_close_does_not_mask_inflight_exception(self):
        # An exception that unwinds through a mis-nested ``with`` stack
        # must surface itself, not the bookkeeping error about the stack.
        tel = Telemetry()
        with pytest.raises(ValueError, match="boom"):
            with tel.span("outer"):
                tel.span("inner").__enter__()  # never exited
                raise ValueError("boom")

    def test_resync_after_inflight_exception_close(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("outer"):
                tel.span("inner").__enter__()
                raise ValueError("boom")
        # The stack resynced: new spans nest under the root again.
        with tel.span("fresh"):
            pass
        assert tel.events[-1]["depth"] == 0


class TestErrors:
    def test_exception_propagates_and_is_counted(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("tick"):
                raise ValueError("boom")
        assert tel.registry.counter("span_errors_total", span="tick").value == 1.0
        assert tel.events[-1]["ok"] is False

    def test_clean_span_has_no_error_count(self):
        tel = Telemetry()
        with tel.span("tick"):
            pass
        # The error counter is only registered on first failure.
        assert tel.events[-1]["ok"] is True


class TestLabels:
    def test_base_labels_merge_into_span_instruments(self):
        tel = Telemetry()
        tel.set_base_labels(workload="kmeans", policy="greengpu")
        with tel.span("tick", device="gpu"):
            pass
        hist = tel.registry.histogram(
            "span_sim_s", span="tick", device="gpu",
            workload="kmeans", policy="greengpu",
        )
        assert hist.count == 1

    def test_events_carry_sim_timestamp(self):
        tel = Telemetry()
        clock = FakeClock(4.0)
        tel.bind_clock(clock)
        tel.event("fault_injected", kind="monitor_timeout")
        assert tel.events[-1]["t_sim"] == 4.0
        assert tel.events[-1]["kind"] == "monitor_timeout"


class TestTracing:
    def test_span_events_carry_trace_ids(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        inner, outer = tel.events[-2], tel.events[-1]
        assert len(outer["trace_id"]) == 32 and len(outer["span_id"]) == 16
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["t_unix0"] is not None

    def test_ids_are_deterministic_across_tracers(self):
        def run():
            tel = Telemetry()
            with tel.span("outer"):
                with tel.span("inner"):
                    pass
            return [(e["trace_id"], e["span_id"]) for e in tel.events]

        assert run() == run()

    def test_repeated_sibling_names_get_distinct_ids(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        a, b = tel.events[0], tel.events[1]
        assert a["span_id"] != b["span_id"]

    def test_explicit_trace_roots_span_elsewhere(self):
        from repro.telemetry.tracecontext import TraceContext

        tel = Telemetry()
        graft = TraceContext.root("elsewhere")
        with tel.span("tick", trace=graft):
            pass
        event = tel.events[-1]
        assert event["trace_id"] == f"{graft.trace_id:032x}"
        assert event["parent_id"] == f"{graft.span_id:016x}"

    def test_record_span_matches_live_instruments(self):
        tel = Telemetry()
        context = tel.child_context("job", "j1")
        tel.record_span(context, "harness_job", wall_s=0.5,
                        labels={"state": "done"}, event_extra={"job": "j1"})
        event = tel.events[-1]
        assert event["type"] == "span"
        assert event["span_id"] == f"{context.span_id:016x}"
        assert event["job"] == "j1"
        hist = tel.registry.histogram("span_wall_s", span="harness_job",
                                      state="done")
        assert hist.count == 1

    def test_null_telemetry_trace_surface(self):
        from repro.telemetry import NOOP

        context = NOOP.current_context()
        assert NOOP.child_context("x").trace_id == context.trace_id
        NOOP.record_span(context, "tick", wall_s=0.0)  # must not record
        assert NOOP.events == []
