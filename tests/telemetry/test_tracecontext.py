"""Deterministic trace contexts: derivation, wire format, propagation."""

import os

from repro.telemetry.tracecontext import (
    DEFAULT_ROOT,
    TRACEPARENT_ENV,
    TraceContext,
    context_from_env,
    default_context,
    derive_id,
    format_span_id,
    format_trace_id,
    propagation_env,
)


class TestDeriveId:
    def test_deterministic_across_calls(self):
        assert derive_id("a", 1, "b") == derive_id("a", 1, "b")

    def test_sensitive_to_parts_and_order(self):
        assert derive_id("a", "b") != derive_id("b", "a")
        assert derive_id("a") != derive_id("a", "a")

    def test_never_zero(self):
        # Zero ids are invalid on the wire; every derivation avoids it.
        assert derive_id() != 0
        assert all(derive_id(i) != 0 for i in range(1000))

    def test_fits_64_bits(self):
        assert 0 < derive_id("x", 2**70, "y") < 2**64

    def test_bool_parts_hash_as_text_not_int(self):
        # bool is an int subclass; True must not collide with 1.
        assert derive_id(True) != derive_id(1)


class TestTraceContext:
    def test_child_chains_parent(self):
        root = TraceContext.root("test")
        child = root.child("job", "j1")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_distinct_parts_distinct_children(self):
        root = TraceContext.root("test")
        assert root.child("job", "a").span_id != root.child("job", "b").span_id

    def test_traceparent_round_trip(self):
        context = TraceContext.root("test").child("job", 7)
        parsed = TraceContext.parse(context.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        # parent_id is a local fact; the wire format carries position only.
        assert parsed.parent_id is None

    def test_parse_rejects_garbage(self):
        for header in (None, "", "nope", "00-xyz-abc-01",
                       "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # zero trace
                       "00-" + "1" * 32 + "-" + "0" * 16 + "-01",   # zero span
                       "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",   # bad version
                       "00-" + "1" * 31 + "-" + "2" * 16 + "-01"):  # short
            assert TraceContext.parse(header) is None, header

    def test_formatting_widths(self):
        assert len(format_trace_id(1)) == 32
        assert len(format_span_id(1)) == 16


class TestPropagation:
    def test_default_context_is_fixed_root(self, monkeypatch):
        monkeypatch.delenv(TRACEPARENT_ENV, raising=False)
        assert context_from_env({}) is None
        assert default_context() == DEFAULT_ROOT

    def test_env_round_trip(self):
        context = TraceContext.root("worker-test").child("job", "j1")
        with propagation_env(context):
            ambient = context_from_env(os.environ)
            assert ambient is not None
            assert ambient.trace_id == context.trace_id
            assert ambient.span_id == context.span_id
        assert TRACEPARENT_ENV not in os.environ

    def test_propagation_env_restores_previous(self):
        outer = TraceContext.root("outer")
        inner = TraceContext.root("inner")
        with propagation_env(outer):
            with propagation_env(inner):
                assert context_from_env(os.environ).trace_id == inner.trace_id
            assert context_from_env(os.environ).trace_id == outer.trace_id

    def test_none_context_is_noop(self):
        with propagation_env(None):
            assert TRACEPARENT_ENV not in os.environ
