"""Trace stitching: forest assembly, signatures, the text waterfall."""

import pytest

from repro.errors import SerializationError
from repro.telemetry import Telemetry
from repro.telemetry.traceview import (
    format_trace_report,
    format_trace_waterfall,
    stitch_spans,
    tree_signature,
)


def traced_events():
    tel = Telemetry()
    with tel.span("outer"):
        with tel.span("inner"):
            pass
        with tel.span("inner"):
            pass
    return tel.events


class TestStitch:
    def test_nested_spans_link(self):
        roots = stitch_spans(traced_events())
        assert len(roots) == 1
        outer = roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert all(c.parent_id == outer.span_id for c in outer.children)

    def test_repeated_names_get_distinct_ids(self):
        roots = stitch_spans(traced_events())
        a, b = roots[0].children
        assert a.span_id != b.span_id

    def test_orphan_parent_becomes_root(self):
        events = traced_events()
        # Drop the outer span: the inners' parent is now out-of-stream.
        events = [e for e in events if e.get("name") != "outer"]
        roots = stitch_spans(events)
        assert sorted(n.name for n in roots) == ["inner", "inner"]

    def test_untraced_spans_are_skipped(self):
        events = [{"type": "span", "name": "legacy", "wall_s": 0.1}]
        assert stitch_spans(events) == []

    def test_duplicate_span_ids_dedupe(self):
        events = traced_events()
        roots = stitch_spans(events + events)
        assert len(roots) == 1
        assert len(roots[0].children) == 2


class TestSignature:
    def test_signature_is_timing_free_and_stable(self):
        sig_a = tree_signature(stitch_spans(traced_events()))
        sig_b = tree_signature(stitch_spans(traced_events()))
        assert sig_a == sig_b

    def test_signature_distinguishes_shapes(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("other"):
                pass
        assert tree_signature(stitch_spans(tel.events)) != tree_signature(
            stitch_spans(traced_events())
        )


class TestWaterfall:
    def test_renders_tree_and_ids(self):
        text = format_trace_waterfall(traced_events())
        assert "3 span(s) in 1 trace(s), 1 root(s)" in text
        assert "outer" in text and "  inner" in text
        root = stitch_spans(traced_events())[0]
        assert f"{root.span_id}" in text

    def test_limit_elides_tail(self):
        text = format_trace_waterfall(traced_events(), limit=1)
        assert "2 more span(s)" in text

    def test_failed_span_is_marked(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("tick"):
                raise ValueError("boom")
        assert "tick!" in format_trace_waterfall(tel.events)

    def test_empty_stream(self):
        assert format_trace_waterfall([]) == "no traced spans found\n"

    def test_report_requires_event_stream(self, tmp_path):
        with pytest.raises(SerializationError, match="--telemetry"):
            format_trace_report(tmp_path)

    def test_report_reads_directory(self, tmp_path):
        from repro.telemetry import export_telemetry

        tel = Telemetry()
        with tel.span("tick"):
            pass
        export_telemetry(tel, tmp_path)
        assert "tick" in format_trace_report(tmp_path)
