"""Tests for the greengpu CLI."""

import pytest

from repro.cli import main


@pytest.fixture
def fast(tmp_path):
    """Common fast flags."""
    return ["--iterations", "2", "--time-scale", "0.05"]


class TestRun:
    def test_run_greengpu(self, capsys, fast):
        assert main(["run", "--workload", "lud", "--policy", "greengpu", *fast]) == 0
        out = capsys.readouterr().out
        assert "workload : lud" in out
        assert "energy" in out

    def test_run_each_policy(self, capsys, fast):
        for policy in ("rodinia-default", "best-performance", "scaling-only",
                       "division-only"):
            assert main(["run", "--workload", "pathfinder", "--policy", policy,
                         *fast]) == 0

    def test_alias_workload(self, capsys, fast):
        assert main(["run", "--workload", "PF", *fast]) == 0

    def test_unknown_workload_errors(self, capsys, fast):
        assert main(["run", "--workload", "doom", *fast]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_all_policies(self, capsys, fast):
        assert main(["compare", "--workload", "hotspot", "--iterations", "4",
                     "--time-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("rodinia-default", "division-only", "greengpu"):
            assert name in out


class TestSweep:
    def test_sweep_reports_minimum(self, capsys):
        assert main(["sweep", "--workload", "kmeans", "--iterations", "1",
                     "--time-scale", "0.03", "--step", "0.15",
                     "--max-ratio", "0.45"]) == 0
        captured = capsys.readouterr()
        assert "energy minimum at r" in captured.out
        assert "harness:" in captured.out

    def test_sweep_progress_lines_on_stderr(self, capsys):
        assert main(["sweep", "--workload", "kmeans", "--iterations", "1",
                     "--time-scale", "0.03", "--step", "0.15",
                     "--max-ratio", "0.45"]) == 0
        err = capsys.readouterr().err
        # One journal-backed line per completed point, with count and ETA.
        assert "[1/4]" in err and "[4/4]" in err
        assert "elapsed" in err

    def test_sweep_resume_skips_completed_points(self, capsys, tmp_path):
        run_dir = str(tmp_path / "sweep-run")
        args = ["sweep", "--workload", "kmeans", "--iterations", "1",
                "--time-scale", "0.03", "--step", "0.15",
                "--max-ratio", "0.45", "--run-dir", run_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        second = capsys.readouterr()
        assert "4 resumed" in second.out
        # Same table, recomputed from the journaled artifacts.
        assert ("energy minimum at r = 0.15"
                in first.out) and ("energy minimum at r = 0.15" in second.out)

    def test_sweep_resume_without_run_dir_errors(self, capsys):
        assert main(["sweep", "--workload", "kmeans", "--resume"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCharacterize:
    def test_characterize_lists_all_workloads(self, capsys):
        assert main(["characterize", "--iterations", "1",
                     "--time-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("bfs", "kmeans", "streamcluster"):
            assert name in out


class TestOracle:
    def test_oracle_reports_levels(self, capsys):
        assert main(["oracle", "--workload", "pathfinder", "--iterations", "1",
                     "--time-scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "oracle optimum" in out
        assert "36 configs searched" in out


class TestReplay:
    def test_replay_csv(self, capsys, tmp_path):
        trace = tmp_path / "log.csv"
        trace.write_text(
            "time,core,mem\n0,80%,30%\n1,82%,31%\n2,20%,60%\n3,21%,62%\n"
        )
        assert main(["replay", str(trace), "--iterations", "1",
                     "--time-scale", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "log" in out

    def test_replay_bad_csv_errors(self, capsys, tmp_path):
        trace = tmp_path / "bad.csv"
        trace.write_text("only,two\n")
        assert main(["replay", str(trace)]) == 2


class TestSaveAndShow:
    def test_save_then_show_roundtrip(self, capsys, tmp_path, fast):
        out_file = tmp_path / "result.json"
        assert main(["run", "--workload", "lud", "--policy", "rodinia-default",
                     "--save", str(out_file), *fast]) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["show", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "workload : lud" in out
        assert "rodinia-default" in out


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestTypedFileErrors:
    def test_show_missing_file_exits_2_without_traceback(self, capsys):
        assert main(["show", "/nonexistent/result.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_show_corrupt_file_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 1, "work')
        assert main(["show", str(bad)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_replay_missing_trace_exits_2(self, capsys):
        assert main(["replay", "/nonexistent/trace.csv"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_metrics_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "snapshot" in err


class TestTelemetry:
    def test_run_telemetry_then_metrics(self, capsys, tmp_path, fast):
        tel_dir = str(tmp_path / "tel")
        assert main(["run", "--workload", "kmeans", "--faults", "moderate",
                     "--telemetry", tel_dir, *fast]) == 0
        capsys.readouterr()
        assert main(["metrics", tel_dir]) == 0
        out = capsys.readouterr().out
        assert "spans (simulated-time durations)" in out
        assert "scaling_tick" in out
        assert "ctrl_monitor_faults_total" in out
        assert "run_total_energy_j" in out

    def test_metrics_matches_legacy_health(self, capsys, tmp_path, fast):
        """The exported ctrl_* counters equal the printed ControlHealth."""
        import json

        tel_dir = tmp_path / "tel"
        save = tmp_path / "result.json"
        assert main(["run", "--workload", "kmeans", "--faults", "moderate",
                     "--telemetry", str(tel_dir), "--save", str(save),
                     *fast]) == 0
        health = json.loads(save.read_text())["health"]
        snapshot = json.loads((tel_dir / "snapshot.json").read_text())
        exported = {
            c["name"]: c["value"] for c in snapshot["counters"]
            if c["name"].startswith("ctrl_")
        }
        for field, value in health.items():
            assert exported[f"ctrl_{field}_total"] == value, field

    def test_sweep_parallel_merge_equals_serial(self, capsys, tmp_path):
        """--parallel merged telemetry == serial, modulo wall-clock."""
        import json

        from repro.telemetry.merge import strip_wall_clock

        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        base = ["sweep", "--workload", "kmeans", "--iterations", "1",
                "--time-scale", "0.03", "--step", "0.3", "--max-ratio", "0.3"]
        assert main([*base, "--telemetry", str(serial_dir)]) == 0
        assert main([*base, "--telemetry", str(parallel_dir),
                     "--parallel", "2"]) == 0
        a = strip_wall_clock(
            json.loads((serial_dir / "snapshot.json").read_text())
        )
        b = strip_wall_clock(
            json.loads((parallel_dir / "snapshot.json").read_text())
        )
        assert a == b


class TestReproduce:
    def test_reproduce_emits_progress(self, capsys):
        assert main(["reproduce", "fig2"]) == 0
        captured = capsys.readouterr()
        assert "=== fig2 ===" in captured.out
        assert "[1/1] fig2 succeeded" in captured.err

    def test_reproduce_unknown_artifact_errors(self, capsys):
        assert main(["reproduce", "fig99"]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCache:
    def test_run_twice_populates_and_reports_stats(self, capsys, tmp_path,
                                                   fast):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "--workload", "kmeans", "--cache-dir", cache_dir, *fast]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert second == first  # served result renders identically
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out

    def test_no_cache_leaves_no_entries(self, capsys, tmp_path, fast):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--workload", "kmeans", "--cache-dir", cache_dir,
                     "--no-cache", *fast]) == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_cache_clear(self, capsys, tmp_path, fast):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--workload", "kmeans", "--cache-dir", cache_dir,
                     *fast]) == 0
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1 removed" in out
        assert "files      : 1 removed" in out
        assert "reclaimed  : " in out and " 0 bytes" not in out

    def test_cache_clear_honors_env_dir(self, capsys, tmp_path, fast,
                                        monkeypatch):
        cache_dir = str(tmp_path / "env-cache")
        monkeypatch.setenv("GREENGPU_CACHE_DIR", cache_dir)
        assert main(["run", "--workload", "kmeans", *fast]) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert f"cache root : {cache_dir}" in out
        assert "entries    : 1 removed" in out
        assert main(["cache", "stats"]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_cache_admin_on_missing_dir_exits_zero(self, capsys, tmp_path,
                                                   monkeypatch):
        missing = str(tmp_path / "never-created")
        monkeypatch.setenv("GREENGPU_CACHE_DIR", missing)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries    : 0" in out
        assert "total bytes: 0" in out
        assert main(["cache", "clear"]) == 0
        assert "entries    : 0 removed" in capsys.readouterr().out

    def test_sweep_warm_cache_skips_points(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--workload", "kmeans", "--iterations", "1",
                "--time-scale", "0.03", "--step", "0.15",
                "--max-ratio", "0.45", "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "4 cached" in warm.out
        assert "skipped_cached" in warm.err
        # The rendered sweep table is identical either way.
        table = [l for l in cold.out.splitlines() if l.startswith("0.")]
        assert [l for l in warm.out.splitlines() if l.startswith("0.")] == table


@pytest.fixture
def audited_run(capsys, tmp_path, fast):
    """One telemetry run with an audit trail, shared per test."""
    tel_dir = str(tmp_path / "tel")
    assert main(["run", "--workload", "kmeans",
                 "--telemetry", tel_dir, *fast]) == 0
    capsys.readouterr()
    return tel_dir


class TestExplain:
    def test_explain_narrates_the_trail(self, capsys, audited_run):
        assert main(["explain", audited_run]) == 0
        out = capsys.readouterr().out
        assert "scaling ticks" in out
        assert "division updates" in out

    def test_explain_tick_detail(self, capsys, audited_run):
        assert main(["explain", audited_run, "--tick", "0"]) == 0
        out = capsys.readouterr().out
        assert "core loss:" in out
        assert "argmax" in out

    def test_explain_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["explain", str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_explain_corrupt_trail_exits_2(self, capsys, tmp_path):
        (tmp_path / "audit.jsonl").write_text("{broken\n")
        assert main(["explain", str(tmp_path)]) == 2
        assert "corrupt" in capsys.readouterr().err


class TestDiff:
    def test_identical_runs_diff_clean(self, capsys, tmp_path, fast):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        for tel_dir in (a, b):
            assert main(["run", "--workload", "kmeans",
                         "--telemetry", tel_dir, *fast]) == 0
        capsys.readouterr()
        assert main(["diff", a, b, "--fail-on-divergence",
                     "--fail-on", "energy=2%"]) == 0
        assert "runs identical" in capsys.readouterr().out

    def test_perturbed_run_trips_the_energy_gate(self, capsys, tmp_path,
                                                 fast):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["run", "--workload", "kmeans",
                     "--telemetry", a, *fast]) == 0
        assert main(["run", "--workload", "kmeans", "--policy",
                     "rodinia-default", "--telemetry", b, *fast]) == 0
        capsys.readouterr()
        assert main(["diff", a, b, "--fail-on", "energy=2%"]) == 1
        captured = capsys.readouterr()
        assert "DIVERGENT" in captured.out
        assert "FAIL energy:" in captured.err

    def test_diff_missing_dir_exits_2(self, capsys, audited_run, tmp_path):
        assert main(["diff", audited_run, str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_diff_bad_fail_on_spec_exits_2(self, capsys, audited_run):
        assert main(["diff", audited_run, audited_run,
                     "--fail-on", "watts=2%"]) == 2
        assert "bad --fail-on" in capsys.readouterr().err


class TestReport:
    def test_report_writes_standalone_html(self, capsys, audited_run,
                                           tmp_path):
        out_file = tmp_path / "run.html"
        assert main(["report", audited_run, "--out", str(out_file)]) == 0
        html = out_file.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        for forbidden in ("http://", "https://", "<script", "src="):
            assert forbidden not in html, forbidden

    def test_report_default_path_inside_run_dir(self, capsys, audited_run):
        import os

        assert main(["report", audited_run]) == 0
        assert os.path.exists(os.path.join(audited_run, "report.html"))
        assert "report written to" in capsys.readouterr().out

    def test_report_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestCompareTelemetry:
    def test_compare_telemetry_merges_per_policy_trails(self, capsys,
                                                        tmp_path):
        import json

        tel_dir = tmp_path / "tel"
        assert main(["compare", "--workload", "kmeans", "--iterations", "2",
                     "--time-scale", "0.05", "--telemetry", str(tel_dir)]) == 0
        out = capsys.readouterr().out
        assert "telemetry written to" in out
        # Every policy's worker export exists, and the merged run-level
        # trail annotates records with the worker that produced them.
        for name in ("rodinia-default", "scaling-only", "division-only",
                     "greengpu"):
            assert (tel_dir / "workers" / name / "snapshot.json").exists()
            assert (tel_dir / "workers" / name / "audit.jsonl").exists()
        merged = [
            json.loads(line)
            for line in (tel_dir / "audit.jsonl").read_text().splitlines()
        ]
        jobs = {record["job"] for record in merged}
        assert "greengpu" in jobs and "scaling-only" in jobs
        assert any(r["kind"] == "scaling" for r in merged)
        capsys.readouterr()
        assert main(["metrics", str(tel_dir)]) == 0
        assert main(["explain", str(tel_dir)]) == 0
