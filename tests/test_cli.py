"""Tests for the greengpu CLI."""

import pytest

from repro.cli import main


@pytest.fixture
def fast(tmp_path):
    """Common fast flags."""
    return ["--iterations", "2", "--time-scale", "0.05"]


class TestRun:
    def test_run_greengpu(self, capsys, fast):
        assert main(["run", "--workload", "lud", "--policy", "greengpu", *fast]) == 0
        out = capsys.readouterr().out
        assert "workload : lud" in out
        assert "energy" in out

    def test_run_each_policy(self, capsys, fast):
        for policy in ("rodinia-default", "best-performance", "scaling-only",
                       "division-only"):
            assert main(["run", "--workload", "pathfinder", "--policy", policy,
                         *fast]) == 0

    def test_alias_workload(self, capsys, fast):
        assert main(["run", "--workload", "PF", *fast]) == 0

    def test_unknown_workload_errors(self, capsys, fast):
        assert main(["run", "--workload", "doom", *fast]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_all_policies(self, capsys, fast):
        assert main(["compare", "--workload", "hotspot", "--iterations", "4",
                     "--time-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("rodinia-default", "division-only", "greengpu"):
            assert name in out


class TestSweep:
    def test_sweep_reports_minimum(self, capsys):
        assert main(["sweep", "--workload", "kmeans", "--iterations", "1",
                     "--time-scale", "0.03", "--step", "0.15",
                     "--max-ratio", "0.45"]) == 0
        captured = capsys.readouterr()
        assert "energy minimum at r" in captured.out
        assert "harness:" in captured.out

    def test_sweep_progress_lines_on_stderr(self, capsys):
        assert main(["sweep", "--workload", "kmeans", "--iterations", "1",
                     "--time-scale", "0.03", "--step", "0.15",
                     "--max-ratio", "0.45"]) == 0
        err = capsys.readouterr().err
        # One journal-backed line per completed point, with count and ETA.
        assert "[1/4]" in err and "[4/4]" in err
        assert "elapsed" in err

    def test_sweep_resume_skips_completed_points(self, capsys, tmp_path):
        run_dir = str(tmp_path / "sweep-run")
        args = ["sweep", "--workload", "kmeans", "--iterations", "1",
                "--time-scale", "0.03", "--step", "0.15",
                "--max-ratio", "0.45", "--run-dir", run_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        second = capsys.readouterr()
        assert "4 resumed" in second.out
        # Same table, recomputed from the journaled artifacts.
        assert ("energy minimum at r = 0.15"
                in first.out) and ("energy minimum at r = 0.15" in second.out)

    def test_sweep_resume_without_run_dir_errors(self, capsys):
        assert main(["sweep", "--workload", "kmeans", "--resume"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCharacterize:
    def test_characterize_lists_all_workloads(self, capsys):
        assert main(["characterize", "--iterations", "1",
                     "--time-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("bfs", "kmeans", "streamcluster"):
            assert name in out


class TestOracle:
    def test_oracle_reports_levels(self, capsys):
        assert main(["oracle", "--workload", "pathfinder", "--iterations", "1",
                     "--time-scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "oracle optimum" in out
        assert "36 configs searched" in out


class TestReplay:
    def test_replay_csv(self, capsys, tmp_path):
        trace = tmp_path / "log.csv"
        trace.write_text(
            "time,core,mem\n0,80%,30%\n1,82%,31%\n2,20%,60%\n3,21%,62%\n"
        )
        assert main(["replay", str(trace), "--iterations", "1",
                     "--time-scale", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "replaying" in out
        assert "log" in out

    def test_replay_bad_csv_errors(self, capsys, tmp_path):
        trace = tmp_path / "bad.csv"
        trace.write_text("only,two\n")
        assert main(["replay", str(trace)]) == 2


class TestSaveAndShow:
    def test_save_then_show_roundtrip(self, capsys, tmp_path, fast):
        out_file = tmp_path / "result.json"
        assert main(["run", "--workload", "lud", "--policy", "rodinia-default",
                     "--save", str(out_file), *fast]) == 0
        assert out_file.exists()
        capsys.readouterr()
        assert main(["show", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "workload : lud" in out
        assert "rodinia-default" in out


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestTypedFileErrors:
    def test_show_missing_file_exits_2_without_traceback(self, capsys):
        assert main(["show", "/nonexistent/result.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_show_corrupt_file_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 1, "work')
        assert main(["show", str(bad)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_replay_missing_trace_exits_2(self, capsys):
        assert main(["replay", "/nonexistent/trace.csv"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_metrics_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "nothing")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "snapshot" in err


class TestTelemetry:
    def test_run_telemetry_then_metrics(self, capsys, tmp_path, fast):
        tel_dir = str(tmp_path / "tel")
        assert main(["run", "--workload", "kmeans", "--faults", "moderate",
                     "--telemetry", tel_dir, *fast]) == 0
        capsys.readouterr()
        assert main(["metrics", tel_dir]) == 0
        out = capsys.readouterr().out
        assert "spans (simulated-time durations)" in out
        assert "scaling_tick" in out
        assert "ctrl_monitor_faults_total" in out
        assert "run_total_energy_j" in out

    def test_metrics_matches_legacy_health(self, capsys, tmp_path, fast):
        """The exported ctrl_* counters equal the printed ControlHealth."""
        import json

        tel_dir = tmp_path / "tel"
        save = tmp_path / "result.json"
        assert main(["run", "--workload", "kmeans", "--faults", "moderate",
                     "--telemetry", str(tel_dir), "--save", str(save),
                     *fast]) == 0
        health = json.loads(save.read_text())["health"]
        snapshot = json.loads((tel_dir / "snapshot.json").read_text())
        exported = {
            c["name"]: c["value"] for c in snapshot["counters"]
            if c["name"].startswith("ctrl_")
        }
        for field, value in health.items():
            assert exported[f"ctrl_{field}_total"] == value, field

    def test_sweep_parallel_merge_equals_serial(self, capsys, tmp_path):
        """--parallel merged telemetry == serial, modulo wall-clock."""
        import json

        from repro.telemetry.merge import strip_wall_clock

        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        base = ["sweep", "--workload", "kmeans", "--iterations", "1",
                "--time-scale", "0.03", "--step", "0.3", "--max-ratio", "0.3"]
        assert main([*base, "--telemetry", str(serial_dir)]) == 0
        assert main([*base, "--telemetry", str(parallel_dir),
                     "--parallel", "2"]) == 0
        a = strip_wall_clock(
            json.loads((serial_dir / "snapshot.json").read_text())
        )
        b = strip_wall_clock(
            json.loads((parallel_dir / "snapshot.json").read_text())
        )
        assert a == b


class TestReproduce:
    def test_reproduce_emits_progress(self, capsys):
        assert main(["reproduce", "fig2"]) == 0
        captured = capsys.readouterr()
        assert "=== fig2 ===" in captured.out
        assert "[1/1] fig2 succeeded" in captured.err

    def test_reproduce_unknown_artifact_errors(self, capsys):
        assert main(["reproduce", "fig99"]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
