"""Tests for the crash-safe write helpers."""

import json
import os

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text, sha256_file


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_tmp_droppings_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "x")
        assert sorted(os.listdir(tmp_path)) == ["out.txt"]

    def test_failed_write_preserves_original(self, tmp_path):
        # The destination keeps its old bytes if serialization blows up
        # mid-write — the whole point of write-to-tmp-then-replace.
        path = tmp_path / "out.json"
        atomic_write_json(path, {"good": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"good": 1}
        assert sorted(os.listdir(tmp_path)) == ["out.json"]


class TestAtomicWriteJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"b": 2, "a": [1, 2]})
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": 2}

    def test_bytes_stable_under_key_order(self, tmp_path):
        # sort_keys: identical payloads hash identically for resume.
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        atomic_write_json(a, {"x": 1, "y": 2})
        atomic_write_json(b, {"y": 2, "x": 1})
        assert a.read_bytes() == b.read_bytes()
        assert sha256_file(a) == sha256_file(b)


class TestSha256File:
    def test_matches_known_digest(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"abc")
        assert sha256_file(path) == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )
