"""Tests pinning the public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_flow(self):
        """The README/docstring quickstart must actually work."""
        from repro import (
            GreenGpuPolicy,
            RodiniaDefaultPolicy,
            make_workload,
            run_workload,
        )

        workload = make_workload("kmeans", gpu_seconds_per_iteration=2.0)
        from repro import ExecutorOptions, GreenGpuConfig

        cfg = GreenGpuConfig(scaling_interval_s=0.05, ondemand_interval_s=0.005)
        options = ExecutorOptions(repartition_overhead_s=0.01)
        baseline = run_workload(
            workload, RodiniaDefaultPolicy(), n_iterations=6, options=options
        )
        green = run_workload(
            workload, GreenGpuPolicy(config=cfg), n_iterations=6, options=options
        )
        assert green.energy_saving_vs(baseline) > 0.0


class TestSubpackageImports:
    @pytest.mark.parametrize("module", [
        "repro.core", "repro.sim", "repro.workloads", "repro.runtime",
        "repro.monitors", "repro.baselines", "repro.analysis",
        "repro.experiments", "repro.extensions", "repro.faults",
        "repro.harness", "repro.cli",
    ])
    def test_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.sim", "repro.workloads", "repro.monitors",
        "repro.baselines", "repro.analysis", "repro.extensions",
        "repro.faults", "repro.harness",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_workload_modules_share_interface(self):
        """Every Table II workload module exposes workload()."""
        for stem in ("kmeans", "hotspot", "bfs", "lud", "nbody",
                     "pathfinder", "quasirandom", "srad", "streamcluster"):
            mod = importlib.import_module(f"repro.workloads.{stem}")
            assert callable(mod.workload)

    def test_experiment_modules_share_interface(self):
        for stem in ("fig1", "fig2", "table2", "fig5", "fig6", "fig7",
                     "fig8", "headline"):
            mod = importlib.import_module(f"repro.experiments.{stem}")
            assert callable(mod.run)
            assert callable(mod.main)
