"""Tests for the SplitMix64 seed-spawning helpers."""

import numpy as np

from repro.faults.injector import FaultPlan
from repro.seeding import spawn_seed, spawn_uniform


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(42, 7) == spawn_seed(42, 7)
        assert spawn_seed(42, 1, 2, 3) == spawn_seed(42, 1, 2, 3)

    def test_path_sensitive(self):
        """Order and nesting matter: child (1, 2) is not child (2, 1),
        and neither is the flat child 12 or 21."""
        seeds = {spawn_seed(0, 1, 2), spawn_seed(0, 2, 1),
                 spawn_seed(0, 12), spawn_seed(0, 21), spawn_seed(0)}
        assert len(seeds) == 5

    def test_sibling_seeds_distinct(self):
        children = {spawn_seed(123, i) for i in range(10_000)}
        assert len(children) == 10_000

    def test_adjacent_roots_decorrelated(self):
        """The failure mode this module exists to avoid: seed + i streams.
        Adjacent roots must not produce adjacent children."""
        a = spawn_seed(1000, 0)
        b = spawn_seed(1001, 0)
        assert abs(a - b) > 1_000_000

    def test_range_fits_numpy_and_json(self):
        for seed in (0, 1, 2**63, 2**64 - 1, -5):
            child = spawn_seed(seed, 3)
            assert 0 <= child < 2**63
            np.random.default_rng(child)  # accepted as a seed

    def test_negative_path_components_fold(self):
        assert spawn_seed(7, -1) == spawn_seed(7, -1)
        assert spawn_seed(7, -1) != spawn_seed(7, 1)


class TestSpawnUniform:
    def test_unit_interval(self):
        draws = [spawn_uniform(9, i) for i in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_roughly_uniform(self):
        draws = [spawn_uniform(9, i) for i in range(4000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55
        assert sum(1 for d in draws if d < 0.25) / len(draws) > 0.2

    def test_stateless(self):
        first = spawn_uniform(5, 2, 4)
        _ = [spawn_uniform(5, i) for i in range(100)]
        assert spawn_uniform(5, 2, 4) == first


class TestFaultPlanForNode:
    def test_for_node_respawns_seed(self):
        plan = FaultPlan(seed=11, monitor_timeout_rate=0.1)
        a = plan.for_node(0)
        b = plan.for_node(1)
        assert a.seed == spawn_seed(11, 0)
        assert b.seed == spawn_seed(11, 1)
        assert a.seed != b.seed
        assert a.monitor_timeout_rate == plan.monitor_timeout_rate

    def test_for_node_deterministic(self):
        plan = FaultPlan(seed=11, actuator_reject_rate=0.2)
        assert plan.for_node(3) == plan.for_node(3)
