"""Tests for the unit helpers."""

import pytest

from repro import units


class TestConversions:
    def test_frequency(self):
        assert units.mhz(900) == 900e6
        assert units.ghz(2.8) == 2.8e9
        assert units.to_mhz(576e6) == pytest.approx(576.0)

    def test_roundtrip(self):
        assert units.to_mhz(units.mhz(820.5)) == pytest.approx(820.5)

    def test_bandwidth_and_compute(self):
        assert units.gib_per_s(1.0) == 1024.0**3
        assert units.gflops(345.6) == pytest.approx(345.6e9)

    def test_energy(self):
        assert units.joules_to_wh(3600.0) == 1.0
        assert units.wh_to_joules(1.0) == 3600.0
        assert units.wh_to_joules(units.joules_to_wh(1234.5)) == pytest.approx(1234.5)


class TestClamp:
    def test_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_boundaries(self):
        assert units.clamp(0.0, 0.0, 1.0) == 0.0
        assert units.clamp(1.0, 0.0, 1.0) == 1.0


class TestAlmostEqual:
    def test_exact(self):
        assert units.almost_equal(1.0, 1.0)

    def test_relative_tolerance(self):
        assert units.almost_equal(1.0, 1.0 + 1e-12)
        assert not units.almost_equal(1.0, 1.001)

    def test_absolute_tolerance_near_zero(self):
        assert units.almost_equal(0.0, 1e-13)
