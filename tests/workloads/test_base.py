"""Tests for the workload abstractions and demand synthesis."""

import pytest

from repro.errors import WorkloadError
from repro.sim.perf import RooflineModel
from repro.workloads.base import DemandModelWorkload, Phase, WorkloadProfile


def profile(**overrides):
    defaults = dict(
        name="test",
        description="",
        enlargement="",
        phases=(Phase(1.0, 0.6, 0.25),),
        gpu_seconds_per_iteration=10.0,
        cpu_gpu_time_ratio=4.0,
        h2d_bytes_per_iteration=1e6,
        d2h_bytes_per_iteration=1e5,
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestPhase:
    def test_rejects_zero_weight(self):
        with pytest.raises(WorkloadError):
            Phase(0.0, 0.5, 0.5)

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(WorkloadError):
            Phase(1.0, 1.5, 0.5)


class TestProfileValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            profile(phases=(Phase(0.5, 0.5, 0.5), Phase(0.4, 0.5, 0.5)))

    def test_needs_at_least_one_phase(self):
        with pytest.raises(WorkloadError):
            profile(phases=())

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(WorkloadError):
            profile(gpu_seconds_per_iteration=0.0)

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(WorkloadError):
            profile(cpu_gpu_time_ratio=0.0)

    def test_rejects_bad_serial_fraction(self):
        with pytest.raises(WorkloadError):
            profile(serial_fraction=1.0)

    def test_mean_utilizations(self):
        p = profile(phases=(Phase(0.5, 0.8, 0.2), Phase(0.5, 0.4, 0.6)))
        assert p.mean_u_core == pytest.approx(0.6)
        assert p.mean_u_mem == pytest.approx(0.4)


class TestDemandCalibration:
    def test_iteration_duration_at_peak(self, gpu_spec, cpu_spec, testbed):
        """All-GPU at peak clocks must take the profile's nominal time."""
        w = DemandModelWorkload(profile(), gpu_spec, cpu_spec)
        testbed.gpu.set_peak()
        from repro.sim.activity import KernelActivity

        testbed.gpu.submit_kernel(KernelActivity(w.gpu_phases(1.0, 0)))
        testbed.run_until_devices_idle()
        assert testbed.now == pytest.approx(
            10.0 + gpu_spec.launch_overhead_s, rel=1e-6
        )

    def test_utilization_targets_at_peak(self, gpu_spec, cpu_spec, testbed):
        w = DemandModelWorkload(profile(serial_fraction=0.0), gpu_spec, cpu_spec)
        testbed.gpu.set_peak()
        from repro.sim.activity import KernelActivity

        testbed.gpu.submit_kernel(KernelActivity(w.gpu_phases(1.0, 0)))
        testbed.run_until_devices_idle()
        elapsed = testbed.gpu.elapsed_seconds
        assert testbed.gpu.busy_core_seconds / elapsed == pytest.approx(0.6, rel=0.01)
        assert testbed.gpu.busy_mem_seconds / elapsed == pytest.approx(0.25, rel=0.01)

    def test_cpu_share_time_ratio(self, gpu_spec, cpu_spec, testbed):
        """One unit of work takes cpu_gpu_time_ratio x longer on the CPU."""
        w = DemandModelWorkload(profile(serial_fraction=0.0), gpu_spec, cpu_spec)
        from repro.sim.activity import KernelActivity

        testbed.cpu.submit_kernel(KernelActivity(w.cpu_phases(1.0, 0)))
        testbed.run_until_devices_idle()
        assert testbed.now == pytest.approx(40.0, rel=1e-6)

    def test_units_scale_demands_linearly(self, gpu_spec, cpu_spec):
        w = DemandModelWorkload(profile(serial_fraction=0.0), gpu_spec, cpu_spec)
        full = w.gpu_phases(1.0, 0)
        half = w.gpu_phases(0.5, 0)
        assert half[0].flops == pytest.approx(0.5 * full[0].flops)
        assert half[0].bytes == pytest.approx(0.5 * full[0].bytes)
        assert half[0].stall_s == pytest.approx(0.5 * full[0].stall_s)

    def test_zero_units_no_phases(self, gpu_spec, cpu_spec):
        w = DemandModelWorkload(profile(), gpu_spec, cpu_spec)
        assert w.gpu_phases(0.0, 0) == []
        assert w.cpu_phases(0.0, 0) == []

    def test_negative_units_raise(self, gpu_spec, cpu_spec):
        w = DemandModelWorkload(profile(), gpu_spec, cpu_spec)
        with pytest.raises(WorkloadError):
            w.gpu_phases(-0.5, 0)

    def test_serial_phase_not_scaled_by_units(self, gpu_spec, cpu_spec):
        w = DemandModelWorkload(profile(serial_fraction=0.3), gpu_spec, cpu_spec)
        full = w.gpu_phases(1.0, 0)
        tenth = w.gpu_phases(0.1, 0)
        # First phase is the serial tax: identical regardless of units.
        assert tenth[0].flops == pytest.approx(full[0].flops)
        assert tenth[0].stall_s == pytest.approx(full[0].stall_s)
        # Divisible phase scales.
        assert tenth[1].flops == pytest.approx(0.1 * full[1].flops)

    def test_serial_plus_divisible_equals_nominal_time(
        self, gpu_spec, cpu_spec, testbed
    ):
        w = DemandModelWorkload(profile(serial_fraction=0.3), gpu_spec, cpu_spec)
        from repro.sim.activity import KernelActivity

        testbed.gpu.set_peak()
        testbed.gpu.submit_kernel(KernelActivity(w.gpu_phases(1.0, 0)))
        testbed.run_until_devices_idle()
        assert testbed.now == pytest.approx(
            10.0 + gpu_spec.launch_overhead_s, rel=1e-6
        )

    def test_transfer_sizes_scale(self, gpu_spec, cpu_spec):
        w = DemandModelWorkload(profile(), gpu_spec, cpu_spec)
        assert w.h2d_bytes(0.5) == pytest.approx(5e5)
        assert w.d2h_bytes(0.5) == pytest.approx(5e4)

    def test_multi_phase_fluctuating_profile(self, gpu_spec, cpu_spec):
        p = profile(phases=(Phase(0.5, 0.85, 0.2), Phase(0.5, 0.25, 0.65)))
        w = DemandModelWorkload(p, gpu_spec, cpu_spec)
        phases = w.gpu_phases(1.0, 0)
        # Each divisible phase gets n*weight interleaved (serial, work)
        # chunk pairs; total demand is conserved.
        n = p.serial_interleave
        assert len(phases) == 2 * n  # 2 * (n/2 chunks per phase) * 2 parts
        total_flops = sum(ph.flops for ph in phases)
        direct = DemandModelWorkload(
            profile(
                phases=(Phase(0.5, 0.85, 0.2), Phase(0.5, 0.25, 0.65)),
                serial_fraction=0.0,
            ),
            gpu_spec,
            cpu_spec,
        )
        divisible_flops = sum(ph.flops for ph in direct.gpu_phases(1.0, 0))
        # Serial adds its own flops on top of the (smaller) divisible part.
        assert total_flops > 0.9 * divisible_flops * (
            1.0 - p.serial_fraction
        )

    def test_interleaving_preserves_totals(self, gpu_spec, cpu_spec):
        """Chopping into slivers must not change total demand."""
        p = profile(serial_fraction=0.3, serial_interleave=16)
        w = DemandModelWorkload(p, gpu_spec, cpu_spec)
        phases = w.gpu_phases(1.0, 0)
        total_stall = sum(ph.stall_s for ph in phases)
        coarse = DemandModelWorkload(
            profile(serial_fraction=0.3, serial_interleave=1), gpu_spec, cpu_spec
        )
        coarse_stall = sum(ph.stall_s for ph in coarse.gpu_phases(1.0, 0))
        assert total_stall == pytest.approx(coarse_stall)

    def test_infeasible_utilization_pair_raises(self, gpu_spec, cpu_spec):
        bad = profile(phases=(Phase(1.0, 0.95, 0.95),))
        with pytest.raises(Exception):
            DemandModelWorkload(bad, gpu_spec, cpu_spec)
