"""Tests for the BFS functional kernel and its division contract."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import bfs


@pytest.fixture
def graph():
    return bfs.generate_graph(n=300, avg_degree=5, seed=2)


class TestGraphConstruction:
    def test_csr_well_formed(self, graph):
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == graph.m
        assert np.all(np.diff(graph.indptr) >= 0)

    def test_backbone_guarantees_connectivity(self, graph):
        depth = bfs.bfs(graph, source=0)
        assert np.all(depth >= 0)

    def test_neighbors(self, graph):
        nbrs = graph.neighbors(0)
        assert np.array_equal(nbrs, graph.indices[: graph.indptr[1]])

    def test_malformed_indptr_rejected(self):
        with pytest.raises(WorkloadError):
            bfs.CsrGraph(np.array([1, 2]), np.array([0]))

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            bfs.CsrGraph(np.array([0, 1]), np.array([5]))

    def test_deterministic_generation(self):
        a = bfs.generate_graph(n=50, seed=9)
        b = bfs.generate_graph(n=50, seed=9)
        assert np.array_equal(a.indices, b.indices)


class TestBfsCorrectness:
    def test_source_depth_zero(self, graph):
        assert bfs.bfs(graph, 0)[0] == 0

    def test_depths_are_shortest_paths(self, graph):
        """Cross-check against networkx's shortest paths."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(graph.n))
        for v in range(graph.n):
            for u in graph.neighbors(v):
                g.add_edge(v, int(u))
        expected = nx.single_source_shortest_path_length(g, 0)
        depth = bfs.bfs(graph, 0)
        for v in range(graph.n):
            assert depth[v] == expected.get(v, bfs.UNVISITED)

    def test_unreachable_marked(self):
        # Two isolated vertices: 1 unreachable from 0.
        graph = bfs.CsrGraph(np.array([0, 0, 0]), np.array([], dtype=np.int64))
        depth = bfs.bfs(graph, 0)
        assert depth[1] == bfs.UNVISITED

    def test_bad_source_raises(self, graph):
        with pytest.raises(WorkloadError):
            bfs.bfs(graph, source=-1)
        with pytest.raises(WorkloadError):
            bfs.bfs(graph, source=graph.n)


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_divided_bfs_matches_monolithic(self, graph, r):
        """Frontier division must not change discovered depths."""
        assert np.array_equal(bfs.bfs(graph, 0, r=0.0), bfs.bfs(graph, 0, r=r))

    def test_level_expansion_marks_next_level(self, graph):
        depth = np.full(graph.n, bfs.UNVISITED, dtype=np.int64)
        depth[0] = 0
        frontier = np.array([0], dtype=np.int64)
        nxt = bfs.bfs_level(graph, depth, frontier, level=0, r=0.5)
        assert np.all(depth[nxt] == 1)

    def test_empty_frontier_returns_empty(self, graph):
        depth = np.zeros(graph.n, dtype=np.int64)
        out = bfs.bfs_level(graph, depth, np.empty(0, dtype=np.int64), 0)
        assert out.size == 0

    def test_workload_factory(self):
        assert bfs.workload().name == "bfs"
