"""Tests for the Table II registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.characteristics import (
    ALIASES,
    TABLE_II,
    get_profile,
    make_workload,
    workload_names,
)


class TestRegistry:
    def test_all_nine_paper_workloads_present(self):
        assert set(workload_names()) == {
            "bfs", "lud", "nbody", "pathfinder", "quasirandom",
            "srad_v2", "hotspot", "kmeans", "streamcluster",
        }

    def test_aliases_resolve(self):
        assert get_profile("PF").name == "pathfinder"
        assert get_profile("QG").name == "quasirandom"
        assert get_profile("SC").name == "streamcluster"
        assert get_profile("srad").name == "srad_v2"

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_fluctuating_flags_match_paper(self):
        """Table II marks QG and SC as highly fluctuating."""
        for name, profile in TABLE_II.items():
            expected = name in ("quasirandom", "streamcluster")
            assert profile.fluctuating == expected, name

    def test_enlargements_quoted_from_paper(self):
        assert TABLE_II["kmeans"].enlargement == "988040 data points"
        assert TABLE_II["hotspot"].enlargement == "2048 by 2048 grids of 600 iterations"
        assert TABLE_II["bfs"].enlargement == "65536 iterations"

    def test_every_alias_points_to_registered_profile(self):
        for target in ALIASES.values():
            assert target in TABLE_II


class TestPaperAnchors:
    def test_kmeans_equal_finish_off_grid(self):
        """kmeans' balance point must fall strictly between the 15 % and
        20 % grid points so the divider parks like the paper's Fig. 7a."""
        ratio = TABLE_II["kmeans"].cpu_gpu_time_ratio
        r_star = 1.0 / (1.0 + ratio)
        assert 0.15 < r_star < 0.20

    def test_hotspot_balance_at_half(self):
        """Fig. 7b: hotspot's time-optimal division is 50/50.  At the
        50/50 point the CPU finishes just ahead of the GPU (tc slightly
        below tg), so the divider arrives from below and the oscillation
        safeguard pins it exactly there."""
        p = TABLE_II["hotspot"]
        divisible = 1.0 - p.serial_fraction
        tc_half = 0.5 * p.cpu_gpu_time_ratio * divisible
        tg_half = p.serial_fraction + 0.5 * divisible
        assert tc_half < tg_half                 # CPU finishes first at 0.50
        assert tc_half == pytest.approx(tg_half, rel=0.10)
        # ... and 0.55 would overshoot: the CPU would become the straggler.
        tc_55 = 0.55 * p.cpu_gpu_time_ratio * divisible
        tg_55 = p.serial_fraction + 0.45 * divisible
        assert tc_55 > tg_55

    def test_nbody_is_core_bounded(self):
        p = TABLE_II["nbody"]
        assert p.phases[0].u_core > 0.8
        assert p.phases[0].u_mem < 0.5

    def test_streamcluster_is_memory_bounded(self):
        p = TABLE_II["streamcluster"]
        dominant = max(p.phases, key=lambda ph: ph.weight)
        assert dominant.u_mem > dominant.u_core

    def test_pathfinder_low_everything(self):
        p = TABLE_II["pathfinder"]
        assert p.mean_u_core < 0.4 and p.mean_u_mem < 0.4

    def test_division_workloads_honour_decoupling_rule(self):
        """kmeans and hotspot iterations must be >= 40 x the 3 s scaling
        interval (paper §IV)."""
        for name in ("kmeans", "hotspot"):
            assert TABLE_II[name].gpu_seconds_per_iteration >= 120.0


class TestMakeWorkload:
    def test_build_with_defaults(self):
        w = make_workload("kmeans")
        assert w.name == "kmeans"
        assert w.default_iterations == 20

    def test_overrides_apply(self):
        w = make_workload("kmeans", gpu_seconds_per_iteration=5.0)
        assert w.profile.gpu_seconds_per_iteration == 5.0

    def test_explicit_specs(self, gpu_spec, cpu_spec):
        w = make_workload("lud", gpu=gpu_spec, cpu=cpu_spec)
        assert w.profile.name == "lud"

    def test_all_workloads_buildable(self):
        for name in workload_names():
            make_workload(name)
