"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.perf import RooflineModel
from repro.workloads.generator import (
    feasible_pair,
    random_profile,
    synthetic_workload,
    uniform_profile,
)


class TestFeasiblePair:
    def test_sampled_pairs_feasible(self):
        rng = np.random.default_rng(0)
        roofline = RooflineModel(4.0)
        for _ in range(50):
            uc, um = feasible_pair(rng, roofline)
            assert roofline.utilization_norm(uc, um) <= 0.98 + 1e-12

    def test_margin_validation(self):
        with pytest.raises(WorkloadError):
            feasible_pair(np.random.default_rng(0), RooflineModel(4.0), margin=1.0)


class TestRandomProfile:
    def test_deterministic_by_seed(self, gpu_spec):
        a = random_profile(3, gpu_spec)
        b = random_profile(3, gpu_spec)
        assert a.phases == b.phases

    def test_phase_count(self, gpu_spec):
        p = random_profile(1, gpu_spec, n_phases=3)
        assert len(p.phases) == 3
        assert p.fluctuating

    def test_weights_sum_to_one(self, gpu_spec):
        p = random_profile(5, gpu_spec, n_phases=4)
        assert sum(ph.weight for ph in p.phases) == pytest.approx(1.0)

    def test_rejects_zero_phases(self, gpu_spec):
        with pytest.raises(WorkloadError):
            random_profile(0, gpu_spec, n_phases=0)

    def test_buildable_into_workload(self, gpu_spec, cpu_spec):
        for seed in range(5):
            p = random_profile(seed, gpu_spec, n_phases=2)
            w = synthetic_workload(p, gpu_spec, cpu_spec)
            assert w.gpu_phases(1.0, 0)


class TestUniformProfile:
    def test_exact_point(self):
        p = uniform_profile(0.5, 0.3)
        assert p.phases[0].u_core == 0.5
        assert p.phases[0].u_mem == 0.3

    def test_buildable(self, gpu_spec, cpu_spec):
        w = synthetic_workload(uniform_profile(0.4, 0.4), gpu_spec, cpu_spec)
        assert w.h2d_bytes(1.0) > 0.0
