"""Tests for the hotspot functional kernel and its division contract."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import hotspot


@pytest.fixture
def problem():
    return hotspot.generate_problem(rows=40, cols=32, seed=1)


class TestStep:
    def test_uniform_grid_zero_power_relaxes_to_ambient(self):
        temp = np.full((8, 8), hotspot.AMB + 10.0)
        power = np.zeros((8, 8))
        for _ in range(200):
            temp = hotspot.step(temp, power)
        assert np.allclose(temp, hotspot.AMB, atol=0.5)

    def test_power_heats_cells(self, problem):
        after = hotspot.step(problem.temp, problem.power + 10.0)
        assert after.mean() > problem.temp.mean()

    def test_shape_preserved(self, problem):
        assert hotspot.step(problem.temp, problem.power).shape == problem.temp.shape

    def test_diffusion_smooths_hot_spot(self):
        temp = np.full((9, 9), hotspot.AMB)
        temp[4, 4] = hotspot.AMB + 100.0
        power = np.zeros((9, 9))
        after = hotspot.step(temp, power)
        assert after[4, 4] < temp[4, 4]
        assert after[4, 3] > temp[4, 3]


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.1, 0.33, 0.5, 0.77, 1.0])
    def test_partitioned_step_matches_monolithic(self, problem, r):
        mono = hotspot.step(problem.temp, problem.power)
        divided = hotspot.step_partitioned(problem.temp, problem.power, r)
        assert np.allclose(mono, divided)

    def test_multi_step_divided_run_matches(self, problem):
        mono = hotspot.run(problem, steps=10, r=0.0)
        divided = hotspot.run(problem, steps=10, r=0.5)
        assert np.allclose(mono, divided)

    def test_tiny_cpu_share_rounds_to_empty_slice(self):
        p = hotspot.generate_problem(rows=8, cols=8)
        divided = hotspot.step_partitioned(p.temp, p.power, 0.01)
        mono = hotspot.step(p.temp, p.power)
        assert np.allclose(mono, divided)


class TestValidation:
    def test_rejects_mismatched_grids(self):
        with pytest.raises(WorkloadError):
            hotspot.HotspotProblem(np.zeros((4, 4)), np.zeros((5, 4)))

    def test_rejects_tiny_grid(self):
        with pytest.raises(WorkloadError):
            hotspot.HotspotProblem(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_run_requires_steps(self, problem):
        with pytest.raises(WorkloadError):
            hotspot.run(problem, steps=0)

    def test_peak_temperature(self, problem):
        assert hotspot.peak_temperature(problem.temp) == problem.temp.max()

    def test_workload_factory(self):
        assert hotspot.workload().name == "hotspot"
