"""Tests for the kmeans functional kernel and its division contract."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import kmeans


@pytest.fixture
def problem():
    return kmeans.generate_problem(n=512, k=5, d=8, seed=3)


class TestLloydStep:
    def test_labels_are_nearest_centroids(self, problem):
        labels, _ = kmeans.lloyd_step(problem)
        dists = np.linalg.norm(
            problem.points[:, None, :] - problem.centroids[None, :, :], axis=2
        )
        assert np.array_equal(labels, np.argmin(dists, axis=1))

    def test_centroids_are_cluster_means(self, problem):
        labels, centroids = kmeans.lloyd_step(problem)
        for c in range(problem.k):
            members = problem.points[labels == c]
            if len(members):
                assert np.allclose(centroids[c], members.mean(axis=0))

    def test_empty_cluster_keeps_old_centroid(self):
        points = np.zeros((4, 2))
        centroids = np.array([[0.0, 0.0], [100.0, 100.0]])
        problem = kmeans.KMeansProblem(points, centroids)
        _, new = kmeans.lloyd_step(problem)
        assert np.allclose(new[1], [100.0, 100.0])

    def test_inertia_non_increasing_over_iterations(self, problem):
        """Lloyd's algorithm's defining invariant."""
        centroids = problem.centroids
        last = np.inf
        for _ in range(8):
            step_problem = kmeans.KMeansProblem(problem.points, centroids)
            labels, centroids = kmeans.lloyd_step(step_problem)
            current = kmeans.inertia(step_problem, labels)
            assert current <= last + 1e-9
            last = current


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.05, 0.2, 0.5, 0.85, 1.0])
    def test_partitioned_step_matches_monolithic(self, problem, r):
        """GreenGPU's division must not change the computation."""
        labels_m, centroids_m = kmeans.lloyd_step(problem)
        labels_p, centroids_p = kmeans.lloyd_step_partitioned(problem, r)
        assert np.array_equal(labels_m, labels_p)
        assert np.allclose(centroids_m, centroids_p)

    def test_multi_iteration_divided_run_matches(self, problem):
        _, mono = kmeans.run_lloyd(problem, iterations=5, r=0.0)
        _, divided = kmeans.run_lloyd(problem, iterations=5, r=0.3)
        assert np.allclose(mono, divided)

    def test_run_requires_iterations(self, problem):
        with pytest.raises(WorkloadError):
            kmeans.run_lloyd(problem, iterations=0)


class TestProblemValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(WorkloadError):
            kmeans.KMeansProblem(np.zeros((4, 3)), np.zeros((2, 2)))

    def test_requires_centroids(self):
        with pytest.raises(WorkloadError):
            kmeans.KMeansProblem(np.zeros((4, 3)), np.zeros((0, 3)))

    def test_generated_problem_shapes(self, problem):
        assert problem.n == 512 and problem.k == 5
        assert problem.centroids.shape == (5, 8)

    def test_generation_deterministic(self):
        a = kmeans.generate_problem(seed=7)
        b = kmeans.generate_problem(seed=7)
        assert np.array_equal(a.points, b.points)


class TestSimulatorBinding:
    def test_workload_factory(self):
        w = kmeans.workload(gpu_seconds_per_iteration=2.0)
        assert w.name == "kmeans"
        assert w.profile.gpu_seconds_per_iteration == 2.0
