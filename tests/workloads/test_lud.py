"""Tests for the blocked LU decomposition kernel."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import lud


@pytest.fixture
def matrix():
    return lud.generate_matrix(n=64, seed=4)


class TestFactorization:
    def test_reconstruction(self, matrix):
        packed = lud.lu_blocked(matrix, block=16)
        assert lud.reconstruction_error(matrix, packed) < 1e-10

    def test_matches_scipy(self, matrix):
        """Pivot-free LU on a dominant matrix agrees with scipy's LU up
        to its permutation (which is identity for dominant matrices with
        large diagonals — compare via reconstruction instead)."""
        packed = lud.lu_blocked(matrix, block=8)
        l, u = lud.unpack(packed)
        assert np.allclose(l @ u, matrix)
        assert np.allclose(np.diag(l), 1.0)
        assert np.allclose(np.tril(u, -1), 0.0)

    def test_block_size_irrelevant_to_result(self, matrix):
        a = lud.lu_blocked(matrix, block=4)
        b = lud.lu_blocked(matrix, block=32)
        assert np.allclose(a, b)

    def test_block_larger_than_matrix(self, matrix):
        packed = lud.lu_blocked(matrix, block=128)
        assert lud.reconstruction_error(matrix, packed) < 1e-10

    def test_input_not_mutated(self, matrix):
        before = matrix.copy()
        lud.lu_blocked(matrix, block=16)
        assert np.array_equal(matrix, before)

    def test_zero_pivot_detected(self):
        singularish = np.zeros((4, 4))
        with pytest.raises(WorkloadError):
            lud.lu_blocked(singularish, block=4)


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.2, 0.5, 0.8, 1.0])
    def test_divided_trailing_update_matches(self, matrix, r):
        mono = lud.lu_blocked(matrix, block=16, r=0.0)
        divided = lud.lu_blocked(matrix, block=16, r=r)
        assert np.allclose(mono, divided)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(WorkloadError):
            lud.lu_blocked(np.zeros((3, 4)))

    def test_rejects_bad_block(self, matrix):
        with pytest.raises(WorkloadError):
            lud.lu_blocked(matrix, block=0)

    def test_generated_matrix_dominant(self, matrix):
        diag = np.abs(np.diag(matrix))
        off = np.abs(matrix).sum(axis=1) - diag
        assert np.all(diag > off * 0.99)

    def test_workload_factory(self):
        w = lud.workload()
        assert w.name == "lud"
        assert w.default_iterations == 10  # Table II: "10 iterations"
