"""Tests for the n-body functional kernel."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import nbody


@pytest.fixture
def system():
    return nbody.generate_system(n=64, seed=5)


class TestForces:
    def test_two_body_attraction(self):
        sys2 = nbody.NBodySystem(
            pos=np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]),
            vel=np.zeros((2, 3)),
            mass=np.ones(2),
        )
        acc = nbody.accelerations(sys2.pos, sys2.mass)
        assert acc[0, 0] > 0.0  # body 0 pulled toward +x
        assert acc[1, 0] < 0.0  # body 1 pulled toward -x

    def test_newton_third_law_two_equal_masses(self):
        sys2 = nbody.NBodySystem(
            pos=np.array([[0.0, 0.0, 0.0], [2.0, 1.0, -1.0]]),
            vel=np.zeros((2, 3)),
            mass=np.ones(2),
        )
        acc = nbody.accelerations(sys2.pos, sys2.mass)
        assert np.allclose(acc[0], -acc[1])

    def test_softening_bounds_selfforce(self, system):
        acc = nbody.accelerations(system.pos, system.mass)
        assert np.all(np.isfinite(acc))

    def test_targets_slice(self, system):
        full = nbody.accelerations(system.pos, system.mass)
        part = nbody.accelerations(system.pos, system.mass, slice(10, 20))
        assert np.allclose(full[10:20], part)


class TestIntegration:
    def test_energy_approximately_conserved(self, system):
        e0 = nbody.total_energy(system)
        advanced = nbody.run(system, steps=20, dt=1e-4)
        e1 = nbody.total_energy(advanced)
        assert abs(e1 - e0) / abs(e0) < 0.02

    def test_momentum_drift_small(self, system):
        p0 = (system.mass[:, None] * system.vel).sum(axis=0)
        advanced = nbody.run(system, steps=10, dt=1e-3)
        p1 = (advanced.mass[:, None] * advanced.vel).sum(axis=0)
        # Softened asymmetric masses drift slightly; must stay tiny.
        assert np.linalg.norm(p1 - p0) < 0.5

    def test_rejects_bad_dt(self, system):
        with pytest.raises(WorkloadError):
            nbody.step(system, dt=0.0)

    def test_rejects_zero_steps(self, system):
        with pytest.raises(WorkloadError):
            nbody.run(system, steps=0)


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.15, 0.5, 0.9, 1.0])
    def test_divided_step_matches_monolithic(self, system, r):
        mono = nbody.step(system, r=0.0)
        divided = nbody.step(system, r=r)
        assert np.allclose(mono.pos, divided.pos)
        assert np.allclose(mono.vel, divided.vel)

    def test_divided_multi_step_run(self, system):
        mono = nbody.run(system, steps=5, r=0.0)
        divided = nbody.run(system, steps=5, r=0.4)
        assert np.allclose(mono.pos, divided.pos)


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(WorkloadError):
            nbody.NBodySystem(np.zeros((3, 2)), np.zeros((3, 3)), np.ones(3))
        with pytest.raises(WorkloadError):
            nbody.NBodySystem(np.zeros((3, 3)), np.zeros((3, 3)), np.ones(2))

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(WorkloadError):
            nbody.NBodySystem(np.zeros((2, 3)), np.zeros((2, 3)), np.array([1.0, 0.0]))

    def test_workload_factory(self):
        w = nbody.workload()
        assert w.name == "nbody"
        assert w.default_iterations == 50  # Table II: "50 of iterations"
