"""Tests for the pathfinder DP kernel."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import pathfinder


@pytest.fixture
def grid():
    return pathfinder.generate_grid(rows=40, cols=60, seed=6)


def brute_force_best(grid):
    """Exponential-free reference: plain per-row DP with python loops."""
    rows, cols = grid.shape
    dp = grid[-1].astype(np.int64).copy()
    for row in range(rows - 2, -1, -1):
        new = np.empty_like(dp)
        for j in range(cols):
            lo, hi = max(j - 1, 0), min(j + 1, cols - 1)
            new[j] = grid[row, j] + min(dp[lo], dp[j], dp[hi])
        dp = new
    return int(dp.min())


class TestDpCorrectness:
    def test_matches_bruteforce_reference(self, grid):
        assert pathfinder.best_path_cost(grid) == brute_force_best(grid)

    def test_single_row_grid(self):
        grid = np.array([[3, 1, 2]], dtype=np.int64)
        assert pathfinder.best_path_cost(grid) == 1

    def test_single_column_grid(self):
        grid = np.array([[2], [3], [4]], dtype=np.int64)
        assert pathfinder.best_path_cost(grid) == 9

    def test_costs_positive(self, grid):
        assert pathfinder.best_path_cost(grid) >= grid.shape[0]  # min cost 1/cell

    def test_rejects_non_2d(self):
        with pytest.raises(WorkloadError):
            pathfinder.min_path_costs(np.zeros(5))


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.1, 0.37, 0.5, 0.92, 1.0])
    def test_divided_dp_matches_monolithic(self, grid, r):
        mono = pathfinder.min_path_costs(grid, r=0.0)
        divided = pathfinder.min_path_costs(grid, r=r)
        assert np.array_equal(mono, divided)

    def test_division_boundary_halo_correct(self):
        """The split column's neighbours cross the partition boundary."""
        rng = np.random.default_rng(0)
        grid = rng.integers(1, 100, size=(10, 11)).astype(np.int64)
        for r in (0.3, 0.5, 0.6):
            assert np.array_equal(
                pathfinder.min_path_costs(grid, 0.0),
                pathfinder.min_path_costs(grid, r),
            )

    def test_workload_factory(self):
        assert pathfinder.workload().name == "pathfinder"
