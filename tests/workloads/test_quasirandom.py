"""Tests for the quasirandom generator kernel."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import quasirandom as qg


class TestSequence:
    def test_values_in_unit_interval(self):
        seq = qg.sequence(0, 1000)
        assert np.all((seq > 0.0) & (seq < 1.0))

    def test_dimension_zero_is_van_der_corput(self):
        # First points of the base-2 Van der Corput sequence (index 1..4):
        # 0.5, 0.25, 0.75, 0.125.
        seq = qg.sequence(0, 4, dim=0)
        assert seq == pytest.approx([0.5, 0.25, 0.75, 0.125], abs=1e-6)

    def test_sequence_is_index_addressable(self):
        """Generating [0, 100) equals [0, 40) + [40, 100)."""
        full = qg.sequence(0, 100)
        assert np.allclose(full, np.concatenate([qg.sequence(0, 40), qg.sequence(40, 60)]))

    def test_dimensions_differ(self):
        assert not np.allclose(qg.sequence(0, 64, dim=0), qg.sequence(0, 64, dim=3))

    def test_no_duplicates_within_run(self):
        seq = qg.sequence(0, 4096)
        assert len(np.unique(seq)) == 4096

    def test_more_uniform_than_pseudorandom(self):
        """The point of quasirandomness: lower discrepancy than an RNG."""
        n = 2048
        quasi = qg.sequence(0, n)
        pseudo = np.random.default_rng(0).uniform(size=n)
        assert qg.star_discrepancy_proxy(quasi) < qg.star_discrepancy_proxy(pseudo)

    def test_rejects_negative_args(self):
        with pytest.raises(WorkloadError):
            qg.sequence(-1, 10)
        with pytest.raises(WorkloadError):
            qg.direction_numbers(-1)

    def test_empty_count(self):
        assert qg.sequence(0, 0).size == 0


class TestMoroInverseCdf:
    def test_median_maps_to_zero(self):
        assert qg.moro_inverse_cdf(np.array([0.5]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        u = np.array([0.1, 0.25, 0.4])
        lower = qg.moro_inverse_cdf(u)
        upper = qg.moro_inverse_cdf(1.0 - u)
        assert np.allclose(lower, -upper, atol=1e-7)

    def test_matches_scipy_ppf(self):
        from scipy.stats import norm

        u = np.linspace(0.001, 0.999, 199)
        ours = qg.moro_inverse_cdf(u)
        assert np.allclose(ours, norm.ppf(u), atol=3e-3)

    def test_tails_monotone(self):
        u = np.array([1e-6, 1e-4, 1e-2, 0.5, 0.99, 0.999999])
        out = qg.moro_inverse_cdf(u)
        assert np.all(np.diff(out) > 0.0)

    def test_rejects_boundary_values(self):
        with pytest.raises(WorkloadError):
            qg.moro_inverse_cdf(np.array([0.0]))
        with pytest.raises(WorkloadError):
            qg.moro_inverse_cdf(np.array([1.0]))


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.2, 0.5, 0.81, 1.0])
    def test_divided_generation_matches(self, r):
        mono = qg.generate(500, r=0.0)
        divided = qg.generate(500, r=r)
        assert np.allclose(mono, divided)

    def test_untransformed_division(self):
        assert np.allclose(
            qg.generate(256, transform=False, r=0.0),
            qg.generate(256, transform=False, r=0.3),
        )

    def test_normal_statistics(self):
        """Transformed output is standard-normal-ish."""
        z = qg.generate(1 << 14)
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02

    def test_workload_factory(self):
        assert qg.workload().name == "quasirandom"
