"""Tests for the SRAD diffusion kernel."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import srad


@pytest.fixture
def image():
    return srad.generate_image(rows=48, cols=40, seed=7)


class TestStep:
    def test_speckle_index_decreases(self, image):
        """SRAD's purpose: smooth multiplicative speckle."""
        before = srad.speckle_index(image)
        after = srad.speckle_index(srad.run(image, steps=20))
        assert after < before

    def test_positive_image_stays_positive(self, image):
        out = srad.run(image, steps=10)
        assert np.all(out > 0.0)

    def test_uniform_image_unchanged(self):
        flat = np.full((16, 16), 50.0)
        out = srad.srad_step(flat)
        assert np.allclose(out, flat, rtol=1e-6)

    def test_shape_preserved(self, image):
        assert srad.srad_step(image).shape == image.shape

    def test_diffusion_coefficient_in_unit_interval(self, image):
        mean = image.mean()
        q0 = image.var() / (mean * mean)
        coeff = srad.diffusion_coefficient(image, q0)
        assert np.all(coeff >= 0.0) and np.all(coeff <= 1.0)


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.1, 0.33, 0.5, 0.85, 1.0])
    def test_divided_step_matches_monolithic(self, image, r):
        mono = srad.srad_step(image)
        divided = srad.srad_step_partitioned(image, r)
        assert np.allclose(mono, divided, rtol=1e-10)

    def test_divided_multi_step_run(self, image):
        mono = srad.run(image, steps=6, r=0.0)
        divided = srad.run(image, steps=6, r=0.4)
        assert np.allclose(mono, divided, rtol=1e-9)

    def test_statistics_reduce_across_both_sides(self, image):
        """The q0 statistic must be global, not per-partition — a
        per-side q0 would visibly diverge from the monolithic result."""
        divided = srad.srad_step_partitioned(image, 0.5)
        mono = srad.srad_step(image)
        assert np.allclose(mono, divided)


class TestValidation:
    def test_run_requires_steps(self, image):
        with pytest.raises(WorkloadError):
            srad.run(image, steps=0)

    def test_generated_image_positive(self, image):
        assert np.all(image > 0.0)

    def test_workload_factory(self):
        assert srad.workload().name == "srad_v2"
