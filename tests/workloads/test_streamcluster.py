"""Tests for the streamcluster facility-location kernel."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import streamcluster as sc


@pytest.fixture
def state():
    return sc.generate_stream(n=200, d=4, k=5, seed=8)


class TestPgain:
    def test_gain_computation_matches_bruteforce(self, state):
        candidate, fc = 17, 10.0
        gain, switch = sc.pgain(state, candidate, fc)
        cand = state.points[candidate]
        d_new = state.weights * ((state.points - cand) ** 2).sum(axis=1)
        delta = state.costs - d_new
        expected_gain = delta[delta > 0].sum() - fc
        assert gain == pytest.approx(expected_gain)
        assert np.array_equal(switch, delta > 0)

    def test_opening_candidate_lowers_total_cost_when_gainful(self, state):
        fc = 1.0
        before = state.total_cost(fc)
        opened = sc.open_if_gainful(state, 50, fc)
        if opened:
            assert state.total_cost(fc) < before

    def test_not_opened_when_facility_cost_huge(self, state):
        assert not sc.open_if_gainful(state, 50, facility_cost=1e12)
        assert state.centers == [0]

    def test_candidate_out_of_range(self, state):
        with pytest.raises(WorkloadError):
            sc.pgain(state, 10_000, 1.0)


class TestDivisionContract:
    @pytest.mark.parametrize("r", [0.0, 0.2, 0.5, 0.77, 1.0])
    def test_divided_pgain_matches(self, state, r):
        gain_m, switch_m = sc.pgain(state, 33, 5.0, r=0.0)
        gain_d, switch_d = sc.pgain(state, 33, 5.0, r=r)
        assert gain_m == pytest.approx(gain_d)
        assert np.array_equal(switch_m, switch_d)

    def test_divided_full_pass_matches(self):
        a = sc.generate_stream(n=150, seed=11)
        b = sc.generate_stream(n=150, seed=11)
        sc.cluster_stream(a, facility_cost=20.0, r=0.0)
        sc.cluster_stream(b, facility_cost=20.0, r=0.45)
        assert a.centers == b.centers
        assert np.array_equal(a.assignment, b.assignment)


class TestClustering:
    def test_clustering_discovers_multiple_centers(self, state):
        sc.cluster_stream(state, facility_cost=5.0)
        assert len(state.centers) > 1

    def test_higher_facility_cost_fewer_centers(self):
        cheap = sc.generate_stream(n=200, seed=12)
        pricey = sc.generate_stream(n=200, seed=12)
        sc.cluster_stream(cheap, facility_cost=1.0)
        sc.cluster_stream(pricey, facility_cost=500.0)
        assert len(cheap.centers) >= len(pricey.centers)

    def test_assignment_costs_consistent(self, state):
        sc.cluster_stream(state, facility_cost=10.0)
        diffs = state.points - state.points[state.assignment]
        expected = state.weights * (diffs**2).sum(axis=1)
        assert np.allclose(state.costs, expected)

    def test_requires_open_center(self):
        with pytest.raises(WorkloadError):
            sc.ClusterState(
                points=np.zeros((3, 2)),
                weights=np.ones(3),
                centers=[],
                assignment=np.zeros(3, dtype=np.intp),
            )

    def test_workload_factory(self):
        assert sc.workload().name == "streamcluster"
