"""Tests for the utilization-trace replay builder."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.perf import RooflineModel
from repro.workloads.trace_replay import (
    TraceSample,
    compress,
    parse_csv,
    profile_from_trace,
    project_feasible,
)

CSV = """time,util.gpu,util.memory
0, 10%, 5%
1, 85%, 40%
2, 86%, 42%
3, 20%, 70%
4, 22%, 68%
"""


class TestParseCsv:
    def test_header_and_percent_handling(self):
        samples = parse_csv(CSV)
        assert len(samples) == 5
        assert samples[1].u_core == pytest.approx(0.85)
        assert samples[3].u_mem == pytest.approx(0.70)

    def test_fractional_convention(self):
        samples = parse_csv("0,0.5,0.2\n1,0.6,0.3\n")
        assert samples[0].u_core == 0.5

    def test_comments_and_blank_lines_skipped(self):
        samples = parse_csv("# a comment\n\n0,0.5,0.2\n1,0.6,0.3\n")
        assert len(samples) == 2

    def test_rejects_wrong_column_count(self):
        with pytest.raises(WorkloadError):
            parse_csv("0,0.5\n1,0.6\n")

    def test_rejects_non_numeric_data_row(self):
        with pytest.raises(WorkloadError):
            parse_csv("0,0.5,0.2\nbad,row,here\n")

    def test_rejects_non_increasing_times(self):
        with pytest.raises(WorkloadError):
            parse_csv("0,0.5,0.2\n0,0.6,0.3\n")

    def test_rejects_single_sample(self):
        with pytest.raises(WorkloadError):
            parse_csv("0,0.5,0.2\n")

    def test_sample_validation(self):
        with pytest.raises(WorkloadError):
            TraceSample(t=-1.0, u_core=0.5, u_mem=0.5)
        with pytest.raises(WorkloadError):
            TraceSample(t=0.0, u_core=1.5, u_mem=0.5)


class TestProjection:
    def test_feasible_pair_untouched(self):
        roofline = RooflineModel(4.0)
        assert project_feasible(0.5, 0.3, roofline) == (0.5, 0.3)

    def test_infeasible_pair_shrunk_onto_boundary(self):
        roofline = RooflineModel(4.0)
        u_core, u_mem = project_feasible(0.99, 0.99, roofline)
        assert roofline.utilization_norm(u_core, u_mem) <= 0.99 + 1e-9
        # Direction preserved.
        assert u_core == pytest.approx(u_mem)


class TestCompress:
    def test_stable_trace_one_segment(self):
        samples = [TraceSample(float(i), 0.50, 0.30) for i in range(5)]
        segments = compress(samples, tolerance=0.05)
        assert len(segments) == 1
        assert segments[0][1] == pytest.approx(0.50)

    def test_phase_change_splits(self):
        samples = parse_csv(CSV)
        segments = compress(samples, tolerance=0.05)
        assert len(segments) == 3  # idle, compute phase, memory phase

    def test_durations_cover_trace(self):
        samples = parse_csv(CSV)
        segments = compress(samples, tolerance=0.05)
        total = sum(d for d, _, _ in segments)
        # Trace span (4 s) plus one extrapolated tail interval.
        assert total == pytest.approx(5.0)

    def test_zero_tolerance_splits_every_change(self):
        samples = parse_csv(CSV)
        segments = compress(samples, tolerance=0.0)
        assert len(segments) == len(samples)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(WorkloadError):
            compress(parse_csv(CSV), tolerance=-0.1)


class TestProfileFromTrace:
    def test_replay_profile_runs_on_testbed(self, gpu_spec, cpu_spec):
        from repro.core.policies import BestPerformancePolicy
        from repro.runtime.executor import run_workload
        from repro.workloads.base import DemandModelWorkload

        profile = profile_from_trace(parse_csv(CSV), gpu_spec, name="t")
        workload = DemandModelWorkload(profile, gpu_spec, cpu_spec)
        result = run_workload(workload, BestPerformancePolicy(), n_iterations=1)
        assert result.total_s == pytest.approx(
            profile.gpu_seconds_per_iteration, rel=0.02
        )

    def test_measured_utilizations_match_trace_means(self, gpu_spec, cpu_spec):
        """Replaying the trace reproduces its (duration-weighted) means."""
        from repro.core.policies import BestPerformancePolicy
        from repro.runtime.executor import run_workload
        from repro.sim.platform import make_testbed
        from repro.workloads.base import DemandModelWorkload

        profile = profile_from_trace(parse_csv(CSV), gpu_spec)
        workload = DemandModelWorkload(profile, gpu_spec, cpu_spec)
        system = make_testbed()
        run_workload(workload, BestPerformancePolicy(), n_iterations=1, system=system)
        measured_core = system.gpu.busy_core_seconds / system.gpu.elapsed_seconds
        assert measured_core == pytest.approx(profile.mean_u_core, rel=0.05)

    def test_multi_phase_marked_fluctuating(self, gpu_spec):
        profile = profile_from_trace(parse_csv(CSV), gpu_spec)
        assert profile.fluctuating
        assert len(profile.phases) == 3

    def test_infeasible_samples_projected(self, gpu_spec):
        text = "0,0.99,0.99\n1,0.98,0.97\n"
        profile = profile_from_trace(parse_csv(text), gpu_spec)
        phase = profile.phases[0]
        assert gpu_spec.roofline.utilization_norm(phase.u_core, phase.u_mem) <= 1.0
